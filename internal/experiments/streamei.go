package experiments

import (
	"fmt"
	"strings"
	"time"

	"hta/internal/core"
	"hta/internal/hpa"
	"hta/internal/kubesim"
	"hta/internal/workload"
	"hta/internal/wq"
)

// StreamEIConfig parameterizes experiment E-I. DefaultStreamEIConfig
// is the full trace-driven day; SmokeStreamEIConfig is the compressed
// variant CI's determinism job runs.
type StreamEIConfig struct {
	Seed int64
	// Trace is the per-task arrival process (HTA cells submit it
	// undeclared so the monitor measures the category; the HPA cell
	// gets a declared copy, since a bare master has no estimator).
	Trace workload.StreamParams
	// Kube is the shared cluster shape.
	Kube kubesim.Config
	// Admission bounds every cell's waiting queue identically, so
	// shed rates are comparable.
	Admission wq.AdmissionPolicy
	// Cycle is the HTA cells' DefaultCycle — deliberately long, so
	// the per-cycle cadence alone is too slow for the morning spike
	// and only the panic path can close the gap.
	Cycle      time.Duration
	MaxWorkers int
	// Panic is the HTA-panic cell's policy (Enabled is forced on).
	Panic   core.PanicConfig
	HPA     hpa.Config
	Timeout time.Duration
}

// DefaultStreamEIConfig is E-I proper: a 24-hour diurnal trace with
// the 9:00 login storm, on a 40-node quota.
func DefaultStreamEIConfig(seed int64) StreamEIConfig {
	return StreamEIConfig{
		Seed:  seed,
		Trace: workload.DayTrace(seed),
		Kube: kubesim.Config{
			InitialNodes: 3,
			MinNodes:     1,
			MaxNodes:     40,
			Seed:         seed,
		},
		Admission:  wq.AdmissionPolicy{MaxWaiting: 300, BufferDepth: 60},
		Cycle:      3 * time.Minute,
		MaxWorkers: 40,
		Panic:      core.PanicConfig{Enabled: true},
		HPA: hpa.Config{
			TargetCPUUtilization: 0.20,
			MinReplicas:          3,
			MaxReplicas:          120,
		},
		Timeout: 30 * time.Hour,
	}
}

// SmokeStreamEIConfig compresses E-I to a two-hour trace with one
// sharp spike — the variant the determinism test and CI run. The
// shape keeps the property under test: the spike outruns the
// per-cycle cadence but fits inside the node quota, so reaction
// latency (panic vs cycle) dominates the sojourn tail.
func SmokeStreamEIConfig(seed int64) StreamEIConfig {
	return StreamEIConfig{
		Seed: seed,
		Trace: workload.StreamParams{
			Window:     2 * time.Hour,
			BasePerMin: 3,
			Amplitude:  0.3,
			Period:     2 * time.Hour,
			Bursts: []workload.Burst{
				{Start: 40 * time.Minute, Duration: 10 * time.Minute, Multiplier: 8},
			},
			Category: "smoke",
			Exec:     2 * time.Minute,
			Jitter:   0.15,
			CPUMilli: 870,
			MemMB:    2048,
			Seed:     seed,
		},
		Kube: kubesim.Config{
			InitialNodes:  3,
			MinNodes:      1,
			MaxNodes:      30,
			ProvisionMean: 60 * time.Second,
			Seed:          seed,
		},
		Admission:  wq.AdmissionPolicy{MaxWaiting: 40, BufferDepth: 10},
		Cycle:      150 * time.Second,
		MaxWorkers: 30,
		Panic:      core.PanicConfig{Enabled: true},
		HPA: hpa.Config{
			TargetCPUUtilization: 0.20,
			MinReplicas:          3,
			MaxReplicas:          90,
		},
		Timeout: 8 * time.Hour,
	}
}

// StreamEIRow is one autoscaler's cell of the E-I table.
type StreamEIRow struct {
	Autoscaler  string
	Submitted   int
	Completed   int
	Quarantined int
	Shed        int
	ShedRate    float64 // Shed / Submitted
	P50         time.Duration
	P99         time.Duration
	Actions     int // applied fleet resizes (thrash)
	Panics      int
	Waste       float64 // accumulated core·s
}

// StreamEIReport is experiment E-I: an open-system day of streaming
// arrivals with morning spikes under HPA, plain HTA, and HTA with the
// panic policy. The open-system accounting invariant — submitted =
// completed + quarantined + shed — is verified for every cell before
// the report is returned.
type StreamEIReport struct {
	Rows   []StreamEIRow
	Runs   map[string]*RunResult
	Tasks  int
	Window time.Duration
}

// StreamEI runs E-I on the full trace-driven day.
func StreamEI(seed int64) (*StreamEIReport, error) {
	return StreamEIWith(DefaultStreamEIConfig(seed))
}

// StreamEIWith runs E-I under an explicit configuration.
func StreamEIWith(cfg StreamEIConfig) (*StreamEIReport, error) {
	rep := &StreamEIReport{Runs: make(map[string]*RunResult), Window: cfg.Trace.Window}

	decl := cfg.Trace
	decl.Declared = true
	declTasks := decl.Tasks()
	rep.Tasks = len(declTasks)

	hpaRes, err := RunHPAStream("HPA", declTasks, HPAOptions{
		Kube:      cfg.Kube,
		HPA:       cfg.HPA,
		Admission: cfg.Admission,
		Timeout:   cfg.Timeout,
	})
	if err != nil {
		return nil, err
	}
	if err := rep.add(hpaRes); err != nil {
		return nil, err
	}

	tasks := cfg.Trace.Tasks() // undeclared copy for the HTA cells
	htaOpt := HTAOptions{
		Kube: cfg.Kube,
		HTA: core.Config{
			MaxWorkers:   cfg.MaxWorkers,
			DefaultCycle: cfg.Cycle,
		},
		Admission: cfg.Admission,
		Timeout:   cfg.Timeout,
	}
	htaRes, err := RunHTAStream("HTA", tasks, htaOpt)
	if err != nil {
		return nil, err
	}
	if err := rep.add(htaRes); err != nil {
		return nil, err
	}

	panicOpt := htaOpt
	panicOpt.HTA.Panic = cfg.Panic
	panicOpt.HTA.Panic.Enabled = true
	panicRes, err := RunHTAStream("HTA-panic", tasks, panicOpt)
	if err != nil {
		return nil, err
	}
	if err := rep.add(panicRes); err != nil {
		return nil, err
	}
	return rep, nil
}

// add verifies the open-system accounting invariant and appends the
// run's row.
func (r *StreamEIReport) add(res *RunResult) error {
	quarantined := res.Failures.Quarantined
	if got := res.Completed + quarantined + res.Shed; got != res.Submitted {
		return fmt.Errorf("experiments: %s accounting broken: submitted %d != completed %d + quarantined %d + shed %d",
			res.Name, res.Submitted, res.Completed, quarantined, res.Shed)
	}
	r.Runs[res.Name] = res
	shedRate := 0.0
	if res.Submitted > 0 {
		shedRate = float64(res.Shed) / float64(res.Submitted)
	}
	r.Rows = append(r.Rows, StreamEIRow{
		Autoscaler:  res.Name,
		Submitted:   res.Submitted,
		Completed:   res.Completed,
		Quarantined: quarantined,
		Shed:        res.Shed,
		ShedRate:    shedRate,
		P50:         res.SojournP50,
		P99:         res.SojournP99,
		Actions:     res.ScalingActions,
		Panics:      res.Panics,
		Waste:       res.AccumulatedWaste(),
	})
	return nil
}

// String renders the E-I table.
func (r *StreamEIReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stream E-I — open-system day (%d arrivals over %v, morning spikes)\n", r.Tasks, r.Window)
	fmt.Fprintf(&b, "%-10s %9s %9s %6s %8s %10s %10s %8s %7s %12s\n",
		"autoscaler", "submitted", "completed", "shed", "shed%", "p50", "p99", "actions", "panics", "waste core·s")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %9d %9d %6d %7.2f%% %10s %10s %8d %7d %12.0f\n",
			row.Autoscaler, row.Submitted, row.Completed, row.Shed, row.ShedRate*100,
			row.P50.Round(time.Second), row.P99.Round(time.Second),
			row.Actions, row.Panics, row.Waste)
	}
	return b.String()
}
