package experiments

import (
	"reflect"
	"testing"
)

// TestTenantChaosEKSmoke runs the compressed E-K twice at the same
// seed: the reports must be byte-identical (the CI determinism gate),
// every cell must balance its books, the planned faults must all be
// delivered, and the isolation headline — untouched tenants within
// the configured tolerance of their chaos-free makespans — must hold.
func TestTenantChaosEKSmoke(t *testing.T) {
	cfg := SmokeTenantChaosEKConfig(42)
	rep1, err := TenantChaosEKWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := TenantChaosEKWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("E-K not deterministic at seed 42:\n%v\nvs\n%v", rep1, rep2)
	}

	byCell := map[string]TenantChaosEKRow{}
	for _, row := range rep1.Rows {
		byCell[row.Cell] = row
		if row.Completed+row.Quarantined+row.Shed != row.Submitted {
			t.Errorf("%s: completed %d + quarantined %d + shed %d != submitted %d",
				row.Cell, row.Completed, row.Quarantined, row.Shed, row.Submitted)
		}
	}
	base := byCell["baseline"]
	if base.MasterKills != 0 || base.ArbiterKills != 0 || base.Joins != 0 {
		t.Errorf("baseline saw chaos: %+v", base)
	}
	if base.Quarantined != 0 {
		t.Errorf("baseline quarantined %d tasks with no faults", base.Quarantined)
	}

	mk := byCell["master-kills"]
	if mk.MasterKills != cfg.MasterKills {
		t.Errorf("master-kills delivered %d/%d kills", mk.MasterKills, cfg.MasterKills)
	}
	if mk.Recovery.MasterRestarts != cfg.MasterKills {
		t.Errorf("master-kills restarts %d != kills %d", mk.Recovery.MasterRestarts, cfg.MasterKills)
	}
	if mk.Recovery.Downtime == 0 {
		t.Errorf("master-kills recorded no downtime")
	}

	ak := byCell["arbiter-kill"]
	if ak.ArbiterKills != cfg.ArbiterKills {
		t.Errorf("arbiter-kill delivered %d/%d kills", ak.ArbiterKills, cfg.ArbiterKills)
	}
	if ak.Recovery.OperatorRestarts != cfg.ArbiterKills {
		t.Errorf("arbiter-kill restarts %d != kills %d", ak.Recovery.OperatorRestarts, cfg.ArbiterKills)
	}
	// An arbiter outage must not lose work: no tenant quarantines a
	// task because the capacity arbiter restarted.
	if ak.Quarantined != 0 {
		t.Errorf("arbiter-kill quarantined %d tasks", ak.Quarantined)
	}

	ch := byCell["churn"]
	if ch.Joins != cfg.ChurnJoins || ch.Leaves != cfg.ChurnLeaves {
		t.Errorf("churn delivered %d/%d joins, %d/%d leaves",
			ch.Joins, cfg.ChurnJoins, ch.Leaves, cfg.ChurnLeaves)
	}
	if ch.TenantsRemoved != cfg.ChurnLeaves {
		t.Errorf("churn removed %d tenants, want %d", ch.TenantsRemoved, cfg.ChurnLeaves)
	}
	if ch.Submitted <= base.Submitted {
		t.Errorf("churn submitted %d, want more than baseline %d (joiner work)", ch.Submitted, base.Submitted)
	}

	full := byCell["full"]
	if full.MasterKills == 0 || full.ArbiterKills == 0 || full.Joins == 0 {
		t.Errorf("full cell missing faults: %+v", full)
	}

	// The isolation headline: in every chaos cell the residents the
	// faults never touched finish within the blast-radius bound of
	// their chaos-free makespans.
	for _, row := range rep1.Rows[1:] {
		if row.Untouched == 0 {
			t.Errorf("%s: no untouched residents to measure isolation on", row.Cell)
		}
		if row.MaxUntouchedDelta > row.IsolationSlack {
			t.Errorf("%s: untouched makespan inflated %v > %v slack",
				row.Cell, row.MaxUntouchedDelta, row.IsolationSlack)
		}
	}
	if !rep1.Isolated() {
		t.Error("report does not claim isolation")
	}
}

// TestTenantChaosEKIsolationAcrossSeeds re-checks the isolation bound
// under different fault schedules, and guards against the report
// being seed-independent.
func TestTenantChaosEKIsolationAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var prev *TenantChaosEKReport
	for _, seed := range []int64{1, 2, 3} {
		rep, err := TenantChaosEKWith(SmokeTenantChaosEKConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Isolated() {
			t.Errorf("seed %d: isolation bound violated:\n%v", seed, rep)
		}
		if prev != nil && reflect.DeepEqual(prev.Rows, rep.Rows) {
			t.Errorf("seeds %d and %d produced identical E-K rows", seed-1, seed)
		}
		prev = rep
	}
}
