package wq

import (
	"fmt"
	"testing"
	"time"

	"hta/internal/resources"
	"hta/internal/simclock"
)

// TestPlacementDifferential pins the avail-index placement to the
// retained linear scan and the lane-sharded engine to the reference
// core: every (policy, engine, placement) combination must produce a
// byte-identical completion trace for the same seeded scenario —
// same worker choices, same finish times, same attempt counts.
func TestPlacementDifferential(t *testing.T) {
	for _, policy := range []Policy{FirstFit, BestFit, WorstFit} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			want := runPlacementTrace(3, policy, false, false)
			for _, reference := range []bool{false, true} {
				for _, naive := range []bool{false, true} {
					got := runPlacementTrace(3, policy, reference, naive)
					if got != want {
						t.Fatalf("reference=%v naive=%v diverged:\n--- indexed\n%s--- variant\n%s",
							reference, naive, want, got)
					}
				}
			}
		})
	}
}

// TestAvailIndexFindFirst exercises the segment tree directly:
// leftmost-fit across growth, updates, and multi-dimension misses.
func TestAvailIndexFindFirst(t *testing.T) {
	var ix availIndex
	vec := func(c float64, m int64) resources.Vector { return resources.New(c, m, 0) }
	ix.ensure(1)
	ix.set(0, vec(4, 1000))
	for i := 1; i < 9; i++ {
		ix.ensure(i + 1)
		ix.set(i, vec(float64(i%4), 1000))
	}
	if got := ix.findFirst(vec(3, 500)); got != 0 {
		t.Fatalf("findFirst(3c) = %d, want 0", got)
	}
	ix.set(0, resources.Zero)
	if got := ix.findFirst(vec(3, 500)); got != 3 {
		t.Fatalf("findFirst(3c) after drain = %d, want 3", got)
	}
	// Multi-dimension miss: max CPU and max memory on different slots.
	ix.reset([]resources.Vector{vec(8, 100), vec(1, 9000)})
	if got := ix.findFirst(vec(8, 8000)); got != -1 {
		t.Fatalf("findFirst(8c/8G) = %d, want -1 (no single worker fits)", got)
	}
	if got := ix.maxFree(); got != vec(8, 9000) {
		t.Fatalf("maxFree = %v, want componentwise max", got)
	}
	if got := ix.findFirst(vec(1, 8000)); got != 1 {
		t.Fatalf("findFirst(1c/8G) = %d, want 1", got)
	}
}

// TestRosterCompaction churns workers through join/kill cycles until
// tombstones force compaction, then checks placement still follows
// join order and the aggregates survived.
func TestRosterCompaction(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := NewMaster(eng, nil)
	cap4 := resources.New(4, 16384, 100000)
	for i := 0; i < 200; i++ {
		if err := m.AddWorker(fmt.Sprintf("w%d", i), cap4); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 150; i++ {
		if err := m.KillWorker(fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction fired at least once (kills outnumber the threshold),
	// so the roster can never be tombstone-dominated...
	if m.tombs > 64 && m.tombs > len(m.roster)/2 {
		t.Fatalf("roster uncompacted: %d tombstones in %d slots", m.tombs, len(m.roster))
	}
	if len(m.roster) >= 200 {
		t.Fatalf("roster never compacted: %d slots for 50 live workers", len(m.roster))
	}
	// ...and live slots must exactly cover the surviving workers.
	live := 0
	for _, w := range m.roster {
		if w != nil {
			live++
		}
	}
	if live != 50 || len(m.roster)-live != m.tombs {
		t.Fatalf("roster live=%d tombs=%d len=%d, want 50 live", live, m.tombs, len(m.roster))
	}
	// Join order must survive compaction: w150 is the oldest survivor.
	m.Submit(knownTask("after", 1, time.Minute))
	eng.RunFor(time.Second)
	tk := m.RunningTasks()
	if len(tk) != 1 || tk[0].WorkerID != "w150" {
		t.Fatalf("first fit after compaction = %+v, want w150", tk)
	}
	if got := m.Stats().Workers; got != 50 {
		t.Fatalf("Workers = %d, want 50", got)
	}
	if want := cap4.Scale(50); m.Stats().Capacity != want {
		t.Fatalf("Capacity = %v, want %v", m.Stats().Capacity, want)
	}
	eng.Run()
	if m.CompletedCount() != 1 {
		t.Fatalf("completed = %d", m.CompletedCount())
	}
}

// TestDrainReentrantFinish is the regression test for the
// double-removal the roster refactor surfaced: a completion callback
// that drains the just-idled worker finishes the drain inside the
// callback, and the completion's own drain check must not remove the
// worker (and its capacity aggregates) a second time.
func TestDrainReentrantFinish(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := NewMaster(eng, nil)
	m.AddWorker("keep", resources.New(4, 16384, 100000))
	m.AddWorker("victim", resources.New(4, 16384, 100000))
	drained := false
	m.OnComplete(func(r Result) {
		if r.Task.WorkerID == "victim" && !drained {
			drained = true
			if err := m.DrainWorker("victim", nil); err != nil {
				t.Errorf("DrainWorker: %v", err)
			}
		}
	})
	// Two tasks so one lands on each worker (4 cores each, 4-core task).
	m.Submit(knownTask("a", 4, time.Minute))
	m.Submit(knownTask("b", 4, 2*time.Minute))
	eng.Run()
	if !drained {
		t.Fatal("drain callback never ran")
	}
	st := m.Stats()
	if st.Workers != 1 || st.DrainingWorkers != 0 {
		t.Fatalf("Workers = %d, DrainingWorkers = %d; want 1, 0", st.Workers, st.DrainingWorkers)
	}
	if want := resources.New(4, 16384, 100000); st.Capacity != want {
		t.Fatalf("Capacity = %v, want %v (double removal would underflow)", st.Capacity, want)
	}
}
