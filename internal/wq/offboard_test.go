package wq

import (
	"testing"
	"time"

	"hta/internal/resources"
)

// TestFailAllPending covers the offboarding handback hook: every
// waiting task — queued, buffered at admission, or sitting out a retry
// backoff — is settled as quarantined in one call, while running tasks
// keep executing.
func TestFailAllPending(t *testing.T) {
	eng, m := newMaster(t)
	m.SetAdmissionPolicy(AdmissionPolicy{MaxWaiting: 2, BufferDepth: 8})
	m.SetRetryPolicy(RetryPolicy{BackoffBase: 5 * time.Minute})
	var failed []Task
	m.OnTaskFailed(func(tk Task) { failed = append(failed, tk) })
	m.AddWorker("w1", resources.New(1, 2048, 1000))

	running := m.Submit(knownTask("align", 1, time.Hour))
	for i := 0; i < 4; i++ {
		m.Submit(knownTask("align", 1, time.Hour)) // 2 queued, 2 buffered
	}
	eng.RunUntil(t0.Add(time.Minute))
	if tk, _ := m.Task(running); tk.State != TaskRunning {
		t.Fatalf("task %d state = %v, want running", running, tk.State)
	}
	// Put one task into a retry backoff: kill the worker's attempt,
	// then re-add capacity so the books stay simple.
	if err := m.KillWorker("w1"); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(t0.Add(2 * time.Minute))

	st := m.Stats()
	if st.Waiting != 5 || st.Running != 0 {
		t.Fatalf("pre-offboard stats = %+v, want 5 waiting, 0 running", st)
	}
	if n := m.FailAllPending(); n != 5 {
		t.Fatalf("FailAllPending = %d, want 5", n)
	}
	eng.Run()
	st = m.Stats()
	if st.Waiting != 0 || st.Running != 0 || st.Quarantined != 5 {
		t.Fatalf("post-offboard stats = %+v, want 0 waiting, 5 quarantined", st)
	}
	if len(failed) != 5 {
		t.Fatalf("OnTaskFailed fired %d times, want 5", len(failed))
	}
	// Conservation: everything submitted is terminal.
	if got := m.CompletedCount() + m.QuarantinedCount() + m.ShedCount(); got != m.SubmittedCount() {
		t.Fatalf("conservation: %d terminal of %d submitted", got, m.SubmittedCount())
	}
	if m.WaitingRetries() != 0 {
		t.Fatalf("retry timers still pending: %d", m.WaitingRetries())
	}
	// The overload interval closed when the buffer was flushed.
	if m.BufferedCount() != 0 {
		t.Fatalf("admission buffer not empty: %d", m.BufferedCount())
	}
	if n := m.FailAllPending(); n != 0 {
		t.Fatalf("second FailAllPending = %d, want 0", n)
	}
}

// TestFailAllPendingLeavesRunning pins that the hook only settles
// never-started work: a running task completes normally afterwards.
func TestFailAllPendingLeavesRunning(t *testing.T) {
	eng, m := newMaster(t)
	var done []Result
	m.OnComplete(func(r Result) { done = append(done, r) })
	m.AddWorker("w1", resources.New(1, 2048, 1000))
	m.Submit(knownTask("align", 1, 10*time.Minute))
	m.Submit(knownTask("align", 1, 10*time.Minute)) // waits behind the first
	eng.RunUntil(t0.Add(time.Minute))

	if n := m.FailAllPending(); n != 1 {
		t.Fatalf("FailAllPending = %d, want 1", n)
	}
	eng.Run()
	if len(done) != 1 {
		t.Fatalf("completions = %d, want 1 (running task must finish)", len(done))
	}
	if got := m.CompletedCount() + m.QuarantinedCount(); got != m.SubmittedCount() {
		t.Fatalf("conservation: %d terminal of %d submitted", got, m.SubmittedCount())
	}
}

// TestRecoveryDowntimeCounter pins the master-side downtime
// accounting: each Restore adds the crash-to-restore interval to
// RecoveryStats().Downtime.
func TestRecoveryDowntimeCounter(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(4, 16384, 1000))
	m.Submit(knownTask("align", 1, 30*time.Minute))
	eng.RunUntil(t0.Add(time.Minute))

	crashRestore(t, eng, m, 45*time.Second, time.Minute)
	if got := m.RecoveryStats().Downtime; got != 45*time.Second {
		t.Fatalf("Downtime after first restore = %v, want 45s", got)
	}
	eng.RunUntil(eng.Now().Add(time.Minute))
	crashRestore(t, eng, m, 90*time.Second, time.Minute)
	if got := m.RecoveryStats().Downtime; got != 135*time.Second {
		t.Fatalf("Downtime after second restore = %v, want 2m15s", got)
	}
	eng.Run()
}
