package wq

import "container/heap"

// idleEntry marks a worker that became idle; seq is its fixed join
// rank, so the heap yields idle workers in join order — the order the
// pre-index placeExclusive scan visited them in.
type idleEntry struct {
	seq uint64
	w   *simWorker
}

// idleHeap is a lazy free list of idle workers. Entries are pushed on
// every busy→idle transition and validated when popped: an entry
// whose worker has since started running, begun draining, or left the
// roster is discarded (the worker re-enters the heap at its next idle
// transition). Every currently idle, connected worker therefore has
// at least one live entry.
type idleHeap []idleEntry

func (h idleHeap) Len() int           { return len(h) }
func (h idleHeap) Less(i, j int) bool { return h[i].seq < h[j].seq }
func (h idleHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *idleHeap) Push(x any)        { *h = append(*h, x.(idleEntry)) }
func (h *idleHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = idleEntry{}
	*h = old[:n-1]
	return e
}

// markIdle records a worker's busy→idle transition (or its join).
// When stale entries pile up faster than exclusive placements drain
// them, the heap is rebuilt from the live roster.
func (m *Master) markIdle(w *simWorker) {
	if len(m.idle) > 4*len(m.workers)+16 {
		m.rebuildIdle()
	}
	heap.Push(&m.idle, idleEntry{seq: w.joinSeq, w: w})
}

func (m *Master) rebuildIdle() {
	m.idle = m.idle[:0]
	for _, w := range m.roster {
		if w != nil && !w.draining && w.running.len() == 0 {
			m.idle = append(m.idle, idleEntry{seq: w.joinSeq, w: w})
		}
	}
	heap.Init(&m.idle)
}

// takeIdle pops the first idle worker in join order, discarding stale
// entries, or returns nil when no worker is idle. The caller must
// immediately occupy the returned worker (its entry is consumed).
func (m *Master) takeIdle() *simWorker {
	for len(m.idle) > 0 {
		e := heap.Pop(&m.idle).(idleEntry)
		w := e.w
		if m.workers[w.id] != w || w.draining || w.running.len() > 0 {
			continue
		}
		return w
	}
	return nil
}
