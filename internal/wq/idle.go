package wq

// idleEntry marks a worker that became idle; seq is its fixed join
// rank, so the heap yields idle workers in join order — the order the
// pre-index placeExclusive scan visited them in.
type idleEntry struct {
	seq uint64
	w   *simWorker
}

// idleHeap is a lazy free list of idle workers. Entries are pushed on
// every busy→idle transition and validated when popped: an entry
// whose worker has since started running, begun draining, or left the
// roster is discarded (the worker re-enters the heap at its next idle
// transition). Every currently idle, connected worker therefore has
// at least one live entry. Hand-rolled rather than container/heap:
// Push/Pop through heap.Interface box every 16-byte entry into an
// interface value, which is pure allocator traffic at two transitions
// per task.
type idleHeap []idleEntry

func (h *idleHeap) push(e idleEntry) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].seq <= e.seq {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = e
	*h = s
}

func (h *idleHeap) pop() idleEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	e := s[n]
	s[n] = idleEntry{}
	s = s[:n]
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if c+1 < n && s[c+1].seq < s[c].seq {
				c++
			}
			if s[c].seq >= e.seq {
				break
			}
			s[i] = s[c]
			i = c
		}
		s[i] = e
	}
	*h = s
	return top
}

// markIdle records a worker's busy→idle transition (or its join).
// When stale entries pile up faster than exclusive placements drain
// them, the heap is rebuilt from the live roster.
func (m *Master) markIdle(w *simWorker) {
	if len(m.idle) > 4*m.workerCount+16 {
		m.rebuildIdle()
	}
	m.idle.push(idleEntry{seq: w.joinSeq, w: w})
}

func (m *Master) rebuildIdle() {
	m.idle = m.idle[:0]
	for _, w := range m.roster {
		if w != nil && !w.draining && w.running.len() == 0 {
			m.idle = append(m.idle, idleEntry{seq: w.joinSeq, w: w})
		}
	}
	// Heapify bottom-up; cheaper than n pushes and runs rarely.
	s := m.idle
	for i := len(s)/2 - 1; i >= 0; i-- {
		e := s[i]
		j := i
		for {
			c := 2*j + 1
			if c >= len(s) {
				break
			}
			if c+1 < len(s) && s[c+1].seq < s[c].seq {
				c++
			}
			if s[c].seq >= e.seq {
				break
			}
			s[j] = s[c]
			j = c
		}
		s[j] = e
	}
}

// takeIdle pops the first idle worker in join order, discarding stale
// entries, or returns nil when no worker is idle. The caller must
// immediately occupy the returned worker (its entry is consumed).
func (m *Master) takeIdle() *simWorker {
	for len(m.idle) > 0 {
		w := m.idle.pop().w
		if !m.connected(w) || w.draining || w.running.len() > 0 {
			continue
		}
		return w
	}
	return nil
}
