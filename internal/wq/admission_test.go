package wq

import (
	"testing"
	"time"

	"hta/internal/resources"
	"hta/internal/simclock"
)

// TestAdmissionBoundsQueueDepth is the overload guarantee: during a
// submission storm far past capacity, the waiting queue never exceeds
// MaxWaiting at any event boundary, the buffer never exceeds
// BufferDepth, everything past both caps is shed with a recorded
// Rejected outcome, and submitted = completed + shed at the end.
func TestAdmissionBoundsQueueDepth(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := NewMaster(eng, nil)
	m.SetAdmissionPolicy(AdmissionPolicy{MaxWaiting: 20, BufferDepth: 10})
	m.AddWorker("w1", resources.New(4, 16384, 1000))

	var rejected []Task
	m.OnRejected(func(tk Task) { rejected = append(rejected, tk) })

	// Storm: 200 ten-second tasks over 10 s against 4 task-slots —
	// two orders of magnitude past what the fleet can absorb.
	const storm = 200
	for i := 0; i < storm; i++ {
		at := time.Duration(i) * 50 * time.Millisecond
		eng.At(t0.Add(at), "storm-submit", func() {
			m.Submit(knownTask("storm", 1, 10*time.Second))
		})
	}
	peakSeen := 0
	tick := eng.Every(100*time.Millisecond, "depth-probe", func() {
		if d := m.QueuedCount(); d > peakSeen {
			peakSeen = d
		}
		if d := m.QueuedCount(); d > 20 {
			t.Fatalf("queue depth %d exceeds cap 20", d)
		}
		if b := m.BufferedCount(); b > 10 {
			t.Fatalf("buffer depth %d exceeds cap 10", b)
		}
	})
	eng.RunFor(30 * time.Minute)
	tick.Stop()
	eng.Run()

	st := m.Stats()
	if st.Waiting != 0 || st.Running != 0 {
		t.Fatalf("storm not drained: %+v", st)
	}
	if m.SubmittedCount() != storm {
		t.Fatalf("SubmittedCount = %d, want %d", m.SubmittedCount(), storm)
	}
	if got := st.Complete + st.Shed; got != storm {
		t.Errorf("completed(%d) + shed(%d) = %d, want %d", st.Complete, st.Shed, got, storm)
	}
	if st.Shed == 0 {
		t.Error("expected sheds during a 10x storm")
	}
	if len(rejected) != st.Shed {
		t.Errorf("OnRejected fired %d times, shed = %d", len(rejected), st.Shed)
	}
	for _, tk := range rejected {
		if tk.State != TaskRejected {
			t.Fatalf("rejected task %d in state %v", tk.ID, tk.State)
		}
	}
	o := m.OverloadStats()
	if o.PeakWaiting > 20 {
		t.Errorf("PeakWaiting = %d, want <= 20", o.PeakWaiting)
	}
	if peakSeen == 0 || o.PeakWaiting < peakSeen {
		t.Errorf("PeakWaiting = %d, probe saw %d", o.PeakWaiting, peakSeen)
	}
	if o.PeakBuffered == 0 || o.PeakBuffered > 10 {
		t.Errorf("PeakBuffered = %d, want in (0, 10]", o.PeakBuffered)
	}
	if o.Shed != st.Shed || o.Buffered == 0 {
		t.Errorf("overload counters = %+v", o)
	}
	if o.TimeInOverload <= 0 {
		t.Errorf("TimeInOverload = %v, want > 0", o.TimeInOverload)
	}
}

// TestAdmissionBufferDrainsInArrivalOrder checks that buffered
// submissions are admitted FIFO as the queue drains, and that with
// room under the cap the buffer empties completely.
func TestAdmissionBufferDrainsInArrivalOrder(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := NewMaster(eng, nil)
	m.SetAdmissionPolicy(AdmissionPolicy{MaxWaiting: 2, BufferDepth: 4})

	// No workers: nothing dispatches, the queue stays full.
	ids := make([]int, 0, 6)
	for i := 0; i < 6; i++ {
		ids = append(ids, m.Submit(knownTask("a", 1, time.Second)))
	}
	eng.Run()
	if got := m.QueuedCount(); got != 2 {
		t.Fatalf("queued = %d, want 2", got)
	}
	if got := m.BufferedCount(); got != 4 {
		t.Fatalf("buffered = %d, want 4", got)
	}
	// Cancel the two queued tasks: the two oldest buffered submissions
	// must take their places, in arrival order.
	if err := m.Cancel(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(ids[1]); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got := m.BufferedCount(); got != 2 {
		t.Fatalf("buffered after cancels = %d, want 2", got)
	}
	order := m.waiting.QueueOrder()
	if len(order) != 2 || order[0] != ids[2] || order[1] != ids[3] {
		t.Fatalf("queue order = %v, want [%d %d]", order, ids[2], ids[3])
	}
	// A worker drains everything that was admitted or buffered.
	m.AddWorker("w1", resources.New(4, 16384, 1000))
	eng.Run()
	if st := m.Stats(); st.Complete != 4 || st.Buffered != 0 {
		t.Fatalf("final stats = %+v, want 4 complete, 0 buffered", st)
	}
}

// TestAdmissionDisabledIsClassicWorkQueue pins that the zero policy
// changes nothing: every submission is queued, nothing buffers or
// sheds, and the overload counters stay zero except the depth peak.
func TestAdmissionDisabledIsClassicWorkQueue(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := NewMaster(eng, nil)
	for i := 0; i < 50; i++ {
		m.Submit(knownTask("a", 1, time.Second))
	}
	if got := m.QueuedCount(); got != 50 {
		t.Fatalf("queued = %d, want 50", got)
	}
	o := m.OverloadStats()
	if o.Shed != 0 || o.Buffered != 0 || o.TimeInOverload != 0 {
		t.Errorf("overload counters with admission disabled: %+v", o)
	}
	if o.PeakWaiting != 50 {
		t.Errorf("PeakWaiting = %d, want 50", o.PeakWaiting)
	}
}

// TestAdmissionCancelBuffered covers withdrawing a submission that
// never left the admission buffer.
func TestAdmissionCancelBuffered(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := NewMaster(eng, nil)
	m.SetAdmissionPolicy(AdmissionPolicy{MaxWaiting: 1, BufferDepth: 2})
	m.Submit(knownTask("a", 1, time.Second))
	id2 := m.Submit(knownTask("a", 1, time.Second))
	if err := m.Cancel(id2); err != nil {
		t.Fatal(err)
	}
	if got := m.BufferedCount(); got != 0 {
		t.Fatalf("buffered = %d, want 0", got)
	}
	if tk, _ := m.Task(id2); tk.State != TaskCanceled {
		t.Fatalf("state = %v, want canceled", tk.State)
	}
	eng.Run()
}

// TestAdmissionRequeueBypassesCap: tasks returned by a worker kill
// re-enter at the queue front even at the cap — they were admitted
// once and are still owed execution.
func TestAdmissionRequeueBypassesCap(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := NewMaster(eng, nil)
	m.SetAdmissionPolicy(AdmissionPolicy{MaxWaiting: 2, BufferDepth: 0})
	m.AddWorker("w1", resources.New(2, 8192, 1000))
	running := make([]int, 0, 2)
	for i := 0; i < 2; i++ {
		running = append(running, m.Submit(knownTask("a", 1, time.Hour)))
	}
	eng.RunFor(time.Second) // both dispatch
	for i := 0; i < 2; i++ {
		m.Submit(knownTask("a", 1, time.Hour)) // fill the queue to the cap
	}
	eng.RunFor(time.Second)
	if err := m.KillWorker("w1"); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(time.Second)
	if got := m.QueuedCount(); got != 4 {
		t.Fatalf("queued after kill = %d, want 4 (cap 2 + 2 requeues)", got)
	}
	order := m.waiting.QueueOrder()
	if order[0] != running[0] || order[1] != running[1] {
		t.Fatalf("requeued tasks not at the front: %v", order)
	}
}

// TestAdmissionSurvivesCrashRestore: buffered submissions re-park on
// Restore and are still admitted in order once capacity appears.
func TestAdmissionSurvivesCrashRestore(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := NewMaster(eng, nil)
	m.SetAdmissionPolicy(AdmissionPolicy{MaxWaiting: 2, BufferDepth: 3})
	for i := 0; i < 5; i++ {
		m.Submit(knownTask("a", 1, time.Second))
	}
	eng.Run()
	before := m.OverloadStats()
	if before.Buffered != 3 {
		t.Fatalf("buffered = %d, want 3", before.Buffered)
	}
	snap, _ := m.Crash()
	if len(snap.AdmissionBuffer) != 3 {
		t.Fatalf("snapshot buffer = %v", snap.AdmissionBuffer)
	}
	eng.RunFor(time.Minute)
	m.Restore(snap, 0)
	eng.Run()
	if got := m.BufferedCount(); got != 3 {
		t.Fatalf("buffered after restore = %d, want 3", got)
	}
	after := m.OverloadStats()
	if after.PeakBuffered != before.PeakBuffered || after.Shed != before.Shed {
		t.Errorf("overload counters lost across restart: %+v vs %+v", after, before)
	}
	m.AddWorker("w1", resources.New(4, 16384, 1000))
	eng.Run()
	if st := m.Stats(); st.Complete != 5 {
		t.Fatalf("complete = %d, want 5", st.Complete)
	}
}

// TestCategoryQueueAges checks the per-category staleness signal.
func TestCategoryQueueAges(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := NewMaster(eng, nil)
	m.Submit(knownTask("old", 1, time.Second))
	eng.RunFor(30 * time.Second)
	m.Submit(knownTask("young", 1, time.Second))
	eng.RunFor(10 * time.Second)
	ages := m.CategoryQueueAges()
	if got := ages["old"]; got != 40*time.Second {
		t.Errorf("old age = %v, want 40s", got)
	}
	if got := ages["young"]; got != 10*time.Second {
		t.Errorf("young age = %v, want 10s", got)
	}
	if got := m.OldestQueuedAge(); got != 40*time.Second {
		t.Errorf("oldest = %v, want 40s", got)
	}
}
