package wq

import (
	"testing"
	"testing/quick"
	"time"

	"hta/internal/netsim"
	"hta/internal/resources"
	"hta/internal/simclock"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

func newMaster(t *testing.T) (*simclock.Engine, *Master) {
	t.Helper()
	eng := simclock.NewEngine(t0)
	return eng, NewMaster(eng, nil)
}

func knownTask(cat string, cores float64, d time.Duration) TaskSpec {
	return TaskSpec{
		Category:  cat,
		Resources: resources.New(cores, 1024, 100),
		Profile: Profile{
			ExecDuration: d,
			UsedCPUMilli: int64(cores * 900),
			UsedMemoryMB: 512,
		},
	}
}

func TestSubmitAndComplete(t *testing.T) {
	eng, m := newMaster(t)
	var done []Result
	m.OnComplete(func(r Result) { done = append(done, r) })
	m.AddWorker("w1", resources.New(3, 12288, 1000))
	id := m.Submit(knownTask("align", 1, 10*time.Second))
	eng.Run()
	if len(done) != 1 {
		t.Fatalf("completions = %d", len(done))
	}
	r := done[0].Task
	if r.ID != id || r.State != TaskComplete || r.WorkerID != "w1" {
		t.Errorf("result = %+v", r)
	}
	if r.ExecWall != 10*time.Second {
		t.Errorf("ExecWall = %v", r.ExecWall)
	}
	if r.Attempts != 1 || r.Exclusive {
		t.Errorf("Attempts=%d Exclusive=%v", r.Attempts, r.Exclusive)
	}
	if r.Measured.MilliCPU != 900 {
		t.Errorf("Measured = %v", r.Measured)
	}
	if got, _ := m.Task(id); got.State != TaskComplete {
		t.Errorf("Task state = %v", got.State)
	}
}

func TestPackingMultipleTasksPerWorker(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(3, 12288, 1000))
	for i := 0; i < 3; i++ {
		m.Submit(knownTask("align", 1, 10*time.Second))
	}
	eng.RunFor(time.Second)
	s := m.Stats()
	if s.Running != 3 || s.Waiting != 0 {
		t.Fatalf("stats = %+v, want all 3 running concurrently", s)
	}
	eng.Run()
	if m.CompletedCount() != 3 {
		t.Fatalf("completed = %d", m.CompletedCount())
	}
	if eng.Elapsed() != 10*time.Second {
		t.Errorf("elapsed = %v, want 10s (parallel)", eng.Elapsed())
	}
}

func TestOverflowQueues(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(2, 12288, 1000))
	for i := 0; i < 4; i++ {
		m.Submit(knownTask("align", 1, 10*time.Second))
	}
	eng.RunFor(time.Second)
	s := m.Stats()
	if s.Running != 2 || s.Waiting != 2 {
		t.Fatalf("stats = %+v", s)
	}
	eng.Run()
	if eng.Elapsed() != 20*time.Second {
		t.Errorf("elapsed = %v, want 20s (two waves)", eng.Elapsed())
	}
}

func TestUnknownResourcesRunExclusively(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(3, 12288, 1000))
	m.AddWorker("w2", resources.New(3, 12288, 1000))
	spec := TaskSpec{Category: "x", Profile: Profile{ExecDuration: 10 * time.Second, UsedCPUMilli: 800}}
	for i := 0; i < 3; i++ {
		m.Submit(spec)
	}
	eng.RunFor(time.Second)
	s := m.Stats()
	if s.Running != 2 || s.Waiting != 1 {
		t.Fatalf("stats = %+v, want one exclusive task per worker", s)
	}
	for _, task := range m.RunningTasks() {
		if !task.Exclusive {
			t.Errorf("task %d not exclusive", task.ID)
		}
		if task.Allocated != resources.New(3, 12288, 1000) {
			t.Errorf("allocation = %v, want whole worker", task.Allocated)
		}
	}
	eng.Run()
	if eng.Elapsed() != 20*time.Second {
		t.Errorf("elapsed = %v, want 20s", eng.Elapsed())
	}
}

type fixedEstimator struct {
	res map[string]resources.Vector
	dur map[string]time.Duration
}

func (f *fixedEstimator) EstimateResources(cat string) (resources.Vector, bool) {
	v, ok := f.res[cat]
	return v, ok
}

func (f *fixedEstimator) EstimateExecTime(cat string) (time.Duration, bool) {
	d, ok := f.dur[cat]
	return d, ok
}

func TestEstimatorEnablesPacking(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(3, 12288, 1000))
	m.SetEstimator(&fixedEstimator{res: map[string]resources.Vector{
		"align": resources.New(1, 4096, 100),
	}})
	spec := TaskSpec{Category: "align", Profile: Profile{ExecDuration: 10 * time.Second, UsedCPUMilli: 900}}
	for i := 0; i < 3; i++ {
		m.Submit(spec)
	}
	eng.RunFor(time.Second)
	if s := m.Stats(); s.Running != 3 {
		t.Fatalf("stats = %+v, want estimator-driven packing of 3", s)
	}
	eng.Run()
	if eng.Elapsed() != 10*time.Second {
		t.Errorf("elapsed = %v", eng.Elapsed())
	}
}

func TestBackfillAroundBlockedHead(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(2, 8192, 1000))
	big := knownTask("big", 2, 10*time.Second)
	small := knownTask("small", 1, 5*time.Second)
	m.Submit(big)   // runs
	m.Submit(big)   // blocked: no room
	m.Submit(small) // backfills? no: w1 full (2 cores used)
	eng.RunFor(time.Second)
	if s := m.Stats(); s.Running != 1 || s.Waiting != 2 {
		t.Fatalf("stats = %+v", s)
	}
	m.AddWorker("w2", resources.New(1, 8192, 1000)) // fits small only
	eng.RunFor(2 * time.Second)
	if s := m.Stats(); s.Running != 2 || s.Waiting != 1 {
		t.Fatalf("after w2: %+v, want small backfilled around blocked big", s)
	}
	eng.Run()
}

func TestDrainWorker(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(3, 12288, 1000))
	m.Submit(knownTask("a", 1, 10*time.Second))
	eng.RunFor(time.Second)
	drained := false
	var drainedAt time.Duration
	if err := m.DrainWorker("w1", func() { drained = true; drainedAt = eng.Elapsed() }); err != nil {
		t.Fatal(err)
	}
	// New tasks must not land on the draining worker.
	m.Submit(knownTask("a", 1, 10*time.Second))
	eng.Run()
	if !drained {
		t.Fatal("drain callback never fired")
	}
	if drainedAt != 10*time.Second {
		t.Errorf("drained at %v, want 10s (after running task)", drainedAt)
	}
	s := m.Stats()
	if s.Workers != 0 {
		t.Errorf("workers = %d, want 0 after drain", s.Workers)
	}
	if s.Waiting != 1 || m.CompletedCount() != 1 {
		t.Errorf("stats = %+v completed=%d; second task must still wait", s, m.CompletedCount())
	}
}

func TestDrainIdleWorkerImmediate(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(3, 12288, 1000))
	drained := false
	m.DrainWorker("w1", func() { drained = true })
	eng.Run()
	if !drained {
		t.Fatal("idle drain did not fire")
	}
	if eng.Elapsed() != 0 {
		t.Errorf("elapsed = %v", eng.Elapsed())
	}
}

func TestKillWorkerRequeuesTasks(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(3, 12288, 1000))
	id1 := m.Submit(knownTask("a", 1, 100*time.Second))
	id2 := m.Submit(knownTask("a", 1, 100*time.Second))
	eng.RunFor(10 * time.Second)
	if err := m.KillWorker("w1"); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Workers != 0 || s.Running != 0 || s.Waiting != 2 {
		t.Fatalf("stats after kill = %+v", s)
	}
	// Requeued tasks must retain submission order at the queue head.
	w := m.WaitingTasks()
	if w[0].ID != id1 || w[1].ID != id2 {
		t.Errorf("queue order = %d,%d", w[0].ID, w[1].ID)
	}
	// A new worker picks them up; attempts increment.
	m.AddWorker("w2", resources.New(3, 12288, 1000))
	eng.Run()
	if m.CompletedCount() != 2 {
		t.Fatalf("completed = %d", m.CompletedCount())
	}
	done, _ := m.Task(id1)
	if done.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", done.Attempts)
	}
	if done.WorkerID != "w2" {
		t.Errorf("worker = %s", done.WorkerID)
	}
}

func TestWorkerErrors(t *testing.T) {
	_, m := newMaster(t)
	if err := m.AddWorker("", resources.Cores(1)); err == nil {
		t.Error("empty id should fail")
	}
	if err := m.AddWorker("w", resources.Zero); err == nil {
		t.Error("zero capacity should fail")
	}
	m.AddWorker("w", resources.Cores(1))
	if err := m.AddWorker("w", resources.Cores(1)); err == nil {
		t.Error("duplicate should fail")
	}
	if err := m.DrainWorker("nope", nil); err == nil {
		t.Error("unknown drain should fail")
	}
	if err := m.KillWorker("nope"); err == nil {
		t.Error("unknown kill should fail")
	}
}

func TestWorkerUsageSignal(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(3, 12288, 1000))
	spec := knownTask("a", 1, 10*time.Second)
	spec.Profile.UsedCPUMilli = 900
	m.Submit(spec)
	m.Submit(spec)
	eng.RunFor(time.Second)
	u := m.WorkerUsage("w1")
	if u.MilliCPU != 1800 {
		t.Errorf("usage = %v, want 1800 millicores", u)
	}
	if !m.WorkerBusy("w1") {
		t.Error("WorkerBusy = false")
	}
	eng.Run()
	if got := m.WorkerUsage("w1"); !got.IsZero() {
		t.Errorf("idle usage = %v", got)
	}
	if got := m.WorkerUsage("nope"); !got.IsZero() {
		t.Errorf("unknown worker usage = %v", got)
	}
}

func TestUsageClampedToAllocation(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(3, 12288, 1000))
	spec := knownTask("a", 1, 10*time.Second)
	spec.Profile.UsedCPUMilli = 5000 // profile exceeds the 1-core allocation
	m.Submit(spec)
	eng.RunFor(time.Second)
	if u := m.WorkerUsage("w1"); u.MilliCPU != 1000 {
		t.Errorf("usage = %v, want clamp to 1000m", u)
	}
	eng.Run()
}

func TestSharedInputFetchedOncePerWorker(t *testing.T) {
	eng := simclock.NewEngine(t0)
	link := netsim.NewLink(eng, 100, 0)
	m := NewMaster(eng, link)
	m.AddWorker("w1", resources.New(3, 12288, 100000))
	db := File{Name: "nt.db", SizeMB: 1400}
	spec := knownTask("align", 1, 10*time.Second)
	spec.SharedInputs = []File{db}
	for i := 0; i < 3; i++ {
		m.Submit(spec)
	}
	eng.Run()
	st := link.Stats()
	// The 1.4 GB database moves exactly once.
	if st.DeliveredMB < 1399 || st.DeliveredMB > 1401 {
		t.Errorf("delivered = %v MB, want ≈1400", st.DeliveredMB)
	}
	// 14 s transfer + 10 s exec.
	if eng.Elapsed() != 24*time.Second {
		t.Errorf("elapsed = %v, want 24s", eng.Elapsed())
	}
}

func TestSharedInputRefetchedOnNewWorker(t *testing.T) {
	eng := simclock.NewEngine(t0)
	link := netsim.NewLink(eng, 100, 0)
	m := NewMaster(eng, link)
	db := File{Name: "nt.db", SizeMB: 700}
	spec := knownTask("align", 3, 10*time.Second)
	spec.SharedInputs = []File{db}
	m.AddWorker("w1", resources.New(3, 12288, 100000))
	m.AddWorker("w2", resources.New(3, 12288, 100000))
	m.Submit(spec)
	m.Submit(spec)
	eng.Run()
	st := link.Stats()
	if st.DeliveredMB < 1399 || st.DeliveredMB > 1401 {
		t.Errorf("delivered = %v MB, want ≈1400 (one copy per worker)", st.DeliveredMB)
	}
}

func TestPrivateInputAndOutputTransfers(t *testing.T) {
	eng := simclock.NewEngine(t0)
	link := netsim.NewLink(eng, 100, 0)
	m := NewMaster(eng, link)
	m.AddWorker("w1", resources.New(3, 12288, 100000))
	spec := knownTask("a", 1, 10*time.Second)
	spec.InputMB = 100 // 1 s in
	spec.OutputMB = 50 // 0.5 s out
	m.Submit(spec)
	eng.Run()
	want := 11500 * time.Millisecond
	if eng.Elapsed() != want {
		t.Errorf("elapsed = %v, want %v", eng.Elapsed(), want)
	}
}

func TestKillWorkerDuringTransfer(t *testing.T) {
	eng := simclock.NewEngine(t0)
	link := netsim.NewLink(eng, 100, 0)
	m := NewMaster(eng, link)
	m.AddWorker("w1", resources.New(3, 12288, 100000))
	spec := knownTask("a", 1, 10*time.Second)
	spec.SharedInputs = []File{{Name: "db", SizeMB: 1000}}
	id := m.Submit(spec)
	eng.RunFor(2 * time.Second) // mid-transfer
	m.KillWorker("w1")
	if link.Active() != 0 {
		t.Errorf("active transfers after kill = %d", link.Active())
	}
	m.AddWorker("w2", resources.New(3, 12288, 100000))
	eng.Run()
	task, _ := m.Task(id)
	if task.State != TaskComplete || task.WorkerID != "w2" || task.Attempts != 2 {
		t.Errorf("task = %+v", task)
	}
}

func TestStatsIdleAndDraining(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(3, 12288, 1000))
	m.AddWorker("w2", resources.New(3, 12288, 1000))
	m.AddWorker("w3", resources.New(3, 12288, 1000))
	m.Submit(knownTask("a", 1, 50*time.Second))
	eng.RunFor(time.Second)
	m.DrainWorker("w2", nil)
	eng.RunFor(time.Second)
	s := m.Stats()
	if s.Workers != 2 || s.IdleWorkers != 1 || s.DrainingWorkers != 0 {
		t.Errorf("stats = %+v (w2 idle-drained immediately; w3 idle)", s)
	}
	// Drain the busy one: stays in roster as draining.
	m.DrainWorker("w1", nil)
	s = m.Stats()
	if s.DrainingWorkers != 1 {
		t.Errorf("draining = %d, want 1", s.DrainingWorkers)
	}
	eng.Run()
}

func TestWaitingAndRunningSnapshots(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(1, 12288, 1000))
	a := m.Submit(knownTask("a", 1, 10*time.Second))
	b := m.Submit(knownTask("b", 1, 10*time.Second))
	eng.RunFor(time.Second)
	r := m.RunningTasks()
	w := m.WaitingTasks()
	if len(r) != 1 || r[0].ID != a {
		t.Errorf("running = %v", r)
	}
	if len(w) != 1 || w[0].ID != b {
		t.Errorf("waiting = %v", w)
	}
	eng.Run()
}

func TestTaskNotFound(t *testing.T) {
	_, m := newMaster(t)
	if _, ok := m.Task(42); ok {
		t.Error("Task(42) should not exist")
	}
}

// Property: for any workload of known-size tasks and any worker
// fleet, every task completes exactly once, capacity is never
// oversubscribed, and the pool balances to zero at the end.
func TestPropertyAllTasksCompleteOnce(t *testing.T) {
	f := func(taskSeeds []uint8, workerSeeds []uint8) bool {
		if len(workerSeeds) == 0 {
			workerSeeds = []uint8{3}
		}
		if len(taskSeeds) > 60 {
			taskSeeds = taskSeeds[:60]
		}
		if len(workerSeeds) > 8 {
			workerSeeds = workerSeeds[:8]
		}
		eng := simclock.NewEngine(t0)
		m := NewMaster(eng, nil)
		for i, ws := range workerSeeds {
			cores := float64(ws%3) + 2
			if err := m.AddWorker(string(rune('a'+i)), resources.New(cores, 8192, 1000)); err != nil {
				return false
			}
		}
		completions := make(map[int]int)
		m.OnComplete(func(r Result) { completions[r.Task.ID]++ })
		for _, ts := range taskSeeds {
			cores := float64(ts%2) + 1
			d := time.Duration(ts%20+1) * time.Second
			m.Submit(knownTask("c", cores, d))
		}
		eng.Run()
		if m.CompletedCount() != len(taskSeeds) {
			return false
		}
		for _, n := range completions {
			if n != 1 {
				return false
			}
		}
		s := m.Stats()
		return s.Waiting == 0 && s.Running == 0 && s.InUse.IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: killing workers at arbitrary times never loses tasks —
// with a fresh worker added afterwards, everything still completes.
func TestPropertyKillNeverLosesTasks(t *testing.T) {
	f := func(nTasks uint8, killAfter uint8) bool {
		n := int(nTasks%30) + 1
		eng := simclock.NewEngine(t0)
		m := NewMaster(eng, nil)
		m.AddWorker("w1", resources.New(3, 12288, 1000))
		for i := 0; i < n; i++ {
			m.Submit(knownTask("c", 1, 10*time.Second))
		}
		eng.RunFor(time.Duration(killAfter%40) * time.Second)
		m.KillWorker("w1")
		m.AddWorker("w2", resources.New(3, 12288, 1000))
		eng.Run()
		return m.CompletedCount() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPriorityOrdering(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(1, 12288, 1000))
	low := knownTask("low", 1, 10*time.Second)
	high := knownTask("high", 1, 10*time.Second)
	high.Priority = 10
	lowID := m.Submit(low)
	low2ID := m.Submit(low)
	highID := m.Submit(high)
	var order []int
	m.OnComplete(func(r Result) { order = append(order, r.Task.ID) })
	eng.Run()
	// All three are queued when the first dispatch pass runs (the
	// pass is a coalesced event), so the high-priority task runs
	// first, then the low ones in submission order.
	want := []int{highID, lowID, low2ID}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v", order, want)
		}
	}
}

func TestPriorityTieKeepsFIFO(t *testing.T) {
	eng, m := newMaster(t)
	a := m.Submit(knownTask("a", 1, 10*time.Second))
	b := m.Submit(knownTask("b", 1, 10*time.Second))
	m.AddWorker("w1", resources.New(1, 12288, 1000))
	var order []int
	m.OnComplete(func(r Result) { order = append(order, r.Task.ID) })
	eng.Run()
	if order[0] != a || order[1] != b {
		t.Fatalf("order = %v, want FIFO [%d %d]", order, a, b)
	}
}

func TestCancelWaitingTask(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(1, 12288, 1000))
	running := m.Submit(knownTask("a", 1, 10*time.Second))
	queued := m.Submit(knownTask("a", 1, 10*time.Second))
	eng.RunFor(time.Second)
	if err := m.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	task, _ := m.Task(queued)
	if task.State != TaskCanceled || task.FinishedAt.IsZero() {
		t.Errorf("task = %+v", task)
	}
	eng.Run()
	if m.CompletedCount() != 1 {
		t.Errorf("completed = %d, want only the running task", m.CompletedCount())
	}
	if done, _ := m.Task(running); done.State != TaskComplete {
		t.Errorf("running task = %v", done.State)
	}
}

func TestCancelRunningTaskFreesCapacity(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(1, 12288, 1000))
	longID := m.Submit(knownTask("a", 1, time.Hour))
	nextID := m.Submit(knownTask("a", 1, 10*time.Second))
	eng.RunFor(time.Second)
	if err := m.Cancel(longID); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	next, _ := m.Task(nextID)
	if next.State != TaskComplete {
		t.Fatalf("next task = %v, want complete after cancel freed the slot", next.State)
	}
	if m.Stats().InUse.AnyPositive() {
		t.Error("allocation leaked after cancel")
	}
}

func TestCancelErrors(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(1, 12288, 1000))
	id := m.Submit(knownTask("a", 1, time.Second))
	eng.Run()
	if err := m.Cancel(id); err == nil {
		t.Error("canceling a completed task should fail")
	}
	if err := m.Cancel(999); err == nil {
		t.Error("canceling an unknown task should fail")
	}
	id2 := m.Submit(knownTask("a", 1, time.Hour))
	eng.RunFor(time.Second)
	m.Cancel(id2)
	if err := m.Cancel(id2); err == nil {
		t.Error("double cancel should fail")
	}
	eng.Run()
}

func TestCancelLastTaskCompletesDrain(t *testing.T) {
	eng, m := newMaster(t)
	m.AddWorker("w1", resources.New(1, 12288, 1000))
	id := m.Submit(knownTask("a", 1, time.Hour))
	eng.RunFor(time.Second)
	drained := false
	m.DrainWorker("w1", func() { drained = true })
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !drained {
		t.Error("drain callback never fired after cancel emptied the worker")
	}
}

func TestDispatchPolicies(t *testing.T) {
	setup := func(p Policy) (*simclock.Engine, *Master) {
		eng := simclock.NewEngine(t0)
		m := NewMaster(eng, nil)
		m.SetPolicy(p)
		m.AddWorker("big", resources.New(4, 16384, 1000))
		m.AddWorker("small", resources.New(2, 16384, 1000))
		// Pre-load the big worker with one task so free CPU differs:
		// big has 3 free, small has 2 free.
		m.Submit(knownTask("seed", 1, time.Hour))
		eng.RunFor(time.Second)
		return eng, m
	}

	t.Run("first-fit picks join order", func(t *testing.T) {
		eng, m := setup(FirstFit)
		id := m.Submit(knownTask("x", 1, time.Hour))
		eng.RunFor(time.Second)
		task, _ := m.Task(id)
		if task.WorkerID != "big" {
			t.Errorf("worker = %s, want big (first in join order)", task.WorkerID)
		}
	})
	t.Run("best-fit picks tightest", func(t *testing.T) {
		eng, m := setup(BestFit)
		id := m.Submit(knownTask("x", 1, time.Hour))
		eng.RunFor(time.Second)
		task, _ := m.Task(id)
		if task.WorkerID != "small" {
			t.Errorf("worker = %s, want small (1 core left vs 2)", task.WorkerID)
		}
	})
	t.Run("worst-fit picks emptiest", func(t *testing.T) {
		eng, m := setup(WorstFit)
		id := m.Submit(knownTask("x", 1, time.Hour))
		eng.RunFor(time.Second)
		task, _ := m.Task(id)
		if task.WorkerID != "big" {
			t.Errorf("worker = %s, want big (2 cores left vs 1)", task.WorkerID)
		}
	})
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		FirstFit: "first-fit", BestFit: "best-fit", WorstFit: "worst-fit", Policy(9): "policy(9)",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", int(p), p)
		}
	}
}

func TestBestFitConsolidatesForDraining(t *testing.T) {
	// Best-fit keeps one worker fully idle where worst-fit spreads —
	// the property HTA's drain-based scale-down benefits from.
	run := func(p Policy) int {
		eng := simclock.NewEngine(t0)
		m := NewMaster(eng, nil)
		m.SetPolicy(p)
		m.AddWorker("w1", resources.New(3, 12288, 1000))
		m.AddWorker("w2", resources.New(3, 12288, 1000))
		for i := 0; i < 3; i++ {
			m.Submit(knownTask("x", 1, time.Hour))
		}
		eng.RunFor(time.Second)
		return m.Stats().IdleWorkers
	}
	if got := run(BestFit); got != 1 {
		t.Errorf("best-fit idle workers = %d, want 1", got)
	}
	if got := run(WorstFit); got != 0 {
		t.Errorf("worst-fit idle workers = %d, want 0 (spread)", got)
	}
}

func TestWorkerDetails(t *testing.T) {
	eng := simclock.NewEngine(t0)
	link := netsim.NewLink(eng, 1000, 0)
	m := NewMaster(eng, link)
	m.AddWorker("w1", resources.New(3, 12288, 100000))
	m.AddWorker("w2", resources.New(3, 12288, 100000))
	spec := knownTask("a", 1, time.Hour)
	spec.SharedInputs = []File{{Name: "db", SizeMB: 10}}
	m.Submit(spec)
	eng.RunFor(time.Minute)
	m.DrainWorker("w2", nil)
	det := m.WorkerDetails()
	if len(det) != 1 {
		// w2 was idle: drained immediately and removed.
		t.Fatalf("details = %+v", det)
	}
	d := det[0]
	if d.ID != "w1" || d.Running != 1 || d.CachedFiles != 1 || d.Draining {
		t.Errorf("detail = %+v", d)
	}
	if d.InUse.MilliCPU != 1000 {
		t.Errorf("in-use = %v", d.InUse)
	}
}

// Property: under random interleavings of priority submissions and
// cancellations, accounting stays consistent — every task ends
// Complete or Canceled exactly once, and capacity balances to zero.
func TestPropertyPriorityCancelConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		eng := simclock.NewEngine(t0)
		m := NewMaster(eng, nil)
		m.AddWorker("w1", resources.New(3, 12288, 1000))
		var ids []int
		completions := make(map[int]int)
		m.OnComplete(func(r Result) { completions[r.Task.ID]++ })
		canceled := make(map[int]bool)
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // submit with varying priority
				spec := knownTask("p", 1, time.Duration(op%30+1)*time.Second)
				spec.Priority = int(op % 3)
				ids = append(ids, m.Submit(spec))
			case 2: // advance time
				eng.RunFor(time.Duration(op%20) * time.Second)
			case 3: // cancel a random not-yet-finished task
				for _, id := range ids {
					task, _ := m.Task(id)
					if task.State == TaskWaiting || task.State == TaskRunning {
						if m.Cancel(id) == nil {
							canceled[id] = true
						}
						break
					}
				}
			}
		}
		eng.Run()
		for _, id := range ids {
			task, _ := m.Task(id)
			switch {
			case canceled[id]:
				if task.State != TaskCanceled || completions[id] != 0 {
					return false
				}
			default:
				if task.State != TaskComplete || completions[id] != 1 {
					return false
				}
			}
		}
		s := m.Stats()
		return s.Running == 0 && s.Waiting == 0 && s.InUse.IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDrainCancelMidFetchFreesLink is the regression test for the
// drain-path teardown leak: canceling the last task of a draining
// worker completed the drain and removed the worker, but an in-flight
// shared-file fetch kept consuming link capacity until it finished.
func TestDrainCancelMidFetchFreesLink(t *testing.T) {
	eng := simclock.NewEngine(t0)
	link := netsim.NewLink(eng, 100, 0)
	m := NewMaster(eng, link)
	m.AddWorker("w1", resources.New(3, 12288, 100000))
	spec := knownTask("a", 1, 10*time.Second)
	spec.SharedInputs = []File{{Name: "db", SizeMB: 1000}}
	id := m.Submit(spec)
	eng.RunFor(2 * time.Second) // mid-fetch
	if link.Active() != 1 {
		t.Fatalf("active transfers = %d, want the in-flight fetch", link.Active())
	}
	drained := false
	m.DrainWorker("w1", func() { drained = true })
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if link.Active() != 0 {
		t.Errorf("removed worker still holds %d transfers", link.Active())
	}
	eng.Run()
	if !drained {
		t.Error("drain callback never fired")
	}
	if eng.Elapsed() != 2*time.Second {
		t.Errorf("elapsed = %v, want 2s; a canceled fetch must not stretch the run", eng.Elapsed())
	}
}

// TestKillWorkerMidFetchWaitersResolve kills a worker while two tasks
// wait on the same shared-file fetch: the link frees immediately and
// both tasks resolve by re-running on a replacement worker.
func TestKillWorkerMidFetchWaitersResolve(t *testing.T) {
	eng := simclock.NewEngine(t0)
	link := netsim.NewLink(eng, 100, 0)
	m := NewMaster(eng, link)
	m.AddWorker("w1", resources.New(3, 12288, 100000))
	spec := knownTask("a", 1, 10*time.Second)
	spec.SharedInputs = []File{{Name: "db", SizeMB: 500}}
	a := m.Submit(spec)
	b := m.Submit(spec) // queues a waiter on the same in-flight fetch
	eng.RunFor(2 * time.Second)
	if err := m.KillWorker("w1"); err != nil {
		t.Fatal(err)
	}
	if link.Active() != 0 {
		t.Errorf("active transfers after kill = %d", link.Active())
	}
	m.AddWorker("w2", resources.New(3, 12288, 100000))
	eng.Run()
	for _, id := range []int{a, b} {
		task, _ := m.Task(id)
		if task.State != TaskComplete || task.WorkerID != "w2" || task.Attempts != 2 {
			t.Errorf("task %d = %+v, want complete on w2 attempt 2", id, task)
		}
	}
}
