package wq

// Crash consistency for the simulated master. Snapshot captures the
// master's durable state (the journal a real master would keep);
// Crash models the process dying — workers detach and keep executing
// on their own — and Restore rebuilds the same object in place, so
// every component holding a *Master pointer (autoscaler, flow runner,
// samplers) survives the restart like clients reconnecting to a
// rebooted service.
//
// Running tasks are not rescheduled on restart: they enter a rescue
// window during which a reattaching worker reporting the matching
// in-flight attempt (same worker, same generation) resumes it where
// it left off. Attempts superseded while the worker was away are
// fenced by the generation counter; tasks whose worker never returns
// are retried with backoff after the window, without consuming a
// retry-budget slot (the downtime was not the task's fault).

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"hta/internal/intern"
	"hta/internal/metrics"
	"hta/internal/resources"
	"hta/internal/simclock"
)

// RetryResume is one task sitting out a retry backoff at snapshot
// time, with its resume deadline.
type RetryResume struct {
	ID     int
	Resume time.Time
}

// Snapshot is the master's durable state: every task record, the
// waiting-queue order, pending retry deadlines, accounting totals and
// failure counters. It is a deep copy — mutating the master after
// Snapshot does not alter it.
type Snapshot struct {
	Epoch         int
	NextID        int
	CompleteCount int
	Tasks         []Task // every task record, ordered by ID
	QueueOrder    []int  // waiting-queue dispatch order
	// AdmissionBuffer holds buffered-submission IDs in arrival order;
	// they re-park in the buffer on Restore (still not admitted).
	AdmissionBuffer []int
	RetryResume     []RetryResume
	Failures        FailureStats
	Overload        metrics.OverloadCounters
}

// InflightTask is one task a detached worker still holds: the attempt
// generation it received and the execution time left at detach.
type InflightTask struct {
	ID        int
	Gen       int
	Remaining time.Duration
}

// WorkerReattach is everything needed to reattach one worker after a
// master restart — what a real worker reports in its reconnect
// handshake. Draining records that a drain was requested before the
// crash (informational: the drain request died with the master and is
// re-issued by the autoscaler's reconcile, not by AttachWorker).
type WorkerReattach struct {
	ID         string
	Capacity   resources.Vector
	DetachedAt time.Time
	Draining   bool
	Inflight   []InflightTask
}

// Snapshot captures the master's durable state without disturbing it.
func (m *Master) Snapshot() Snapshot {
	snap := Snapshot{
		Epoch:           m.epoch,
		NextID:          m.nextID,
		CompleteCount:   m.completeCount,
		Failures:        m.fstats,
		QueueOrder:      m.waiting.QueueOrder(),
		AdmissionBuffer: append([]int(nil), m.admQueue...),
		// Any open overload interval is closed at snapshot time; the
		// restored master re-opens one if it is still deflecting.
		Overload: m.OverloadStats(),
	}
	snap.Tasks = make([]Task, 0, len(m.byID)-1)
	for id := 1; id < len(m.byID); id++ {
		if t := m.byID[id]; t != nil {
			snap.Tasks = append(snap.Tasks, *t)
		}
	}
	for id, at := range m.retryResume {
		snap.RetryResume = append(snap.RetryResume, RetryResume{ID: id, Resume: at})
	}
	slices.SortFunc(snap.RetryResume, func(a, b RetryResume) int { return cmp.Compare(a.ID, b.ID) })
	return snap
}

// Crash models the master process dying: it returns the state a
// journal would have persisted plus, for the simulation's benefit,
// the reattach records of every connected worker (real workers carry
// this state themselves and report it when they reconnect). The
// master object is reset in place and refuses submissions until
// Restore. Workers keep executing their tasks while the master is
// down — their in-flight records carry the execution time remaining
// at detach. Crash while already down is a no-op.
func (m *Master) Crash() (Snapshot, []WorkerReattach) {
	if m.down {
		return Snapshot{}, nil
	}
	snap := m.Snapshot()
	now := m.eng.Now()
	workers := make([]WorkerReattach, 0, m.workerCount)
	for _, w := range m.roster {
		if w == nil {
			continue
		}
		wr := WorkerReattach{
			ID:         w.id,
			Capacity:   w.pool.Capacity(),
			DetachedAt: now,
			Draining:   w.draining,
		}
		tids := make([]int, 0, w.running.len())
		for _, rt := range w.running.rts {
			tids = append(tids, rt.task.ID)
		}
		slices.Sort(tids)
		for _, tid := range tids {
			rt := w.running.get(tid)
			t := rt.task
			remaining := t.Profile.ExecDuration
			if rt.executing {
				if remaining -= m.eng.Elapsed() - rt.execStart; remaining < 0 {
					remaining = 0
				}
			}
			wr.Inflight = append(wr.Inflight, InflightTask{ID: tid, Gen: t.Gen, Remaining: remaining})
			// Stop the attempt's master-side machinery without the lost-
			// work accounting of stopTask: the attempt itself lives on at
			// the worker.
			if rt.inTr != nil {
				rt.inTr.Cancel()
				rt.inTr = nil
			}
			if rt.outTr != nil {
				rt.outTr.Cancel()
				rt.outTr = nil
			}
			rt.execTmr.Stop()
			rt.abortTmr.Stop()
			rt.aborted = true
		}
		fids := make([]int32, 0, len(w.fetches))
		for fid := range w.fetches {
			fids = append(fids, fid)
		}
		slices.SortFunc(fids, func(a, b int32) int { return cmp.Compare(m.fids.Str(a), m.fids.Str(b)) })
		for _, fid := range fids {
			w.fetches[fid].Cancel()
		}
		workers = append(workers, wr)
	}
	for _, tmr := range m.retryPending {
		tmr.Stop()
	}
	m.rescueTmr.Stop()

	m.nextID = 0
	m.byID = make([]*Task, 1)
	m.taskSlab = nil
	m.waiting = newWaitQueue()
	m.rtFree = nil
	m.wids = intern.NewTable()
	m.fids = intern.NewTable()
	m.workersBy = nil
	m.workerCount = 0
	m.roster, m.tombs = nil, 0
	m.avail = availIndex{}
	m.naiveOrder = nil
	m.idle = nil
	m.retryPending = make(map[int]simclock.Timer)
	m.retryResume = make(map[int]time.Time)
	m.rescuable = nil
	m.fstats = FailureStats{}
	m.admQueue = nil
	m.admSet = make(map[int]struct{})
	m.ostats = metrics.OverloadCounters{}
	m.inOverload = false
	m.completeCount = 0
	m.runningCount, m.idleCount, m.drainingCount = 0, 0, 0
	m.totalCap, m.totalUsed, m.busyUsage = resources.Zero, resources.Zero, resources.Zero
	m.rev++
	m.down = true
	m.downSince = now
	return snap, workers
}

// Restore rebuilds the master from a snapshot — the restarted process
// replaying its journal. Waiting tasks re-enter the queue in their
// former dispatch order, retry backoffs re-arm for their remaining
// delay, and every formerly running task enters the rescue window:
// for rescueWindow, a reattaching worker may resume it (AttachWorker);
// afterwards survivors are requeued with backoff, budget unchanged.
// Submissions buffered during the downtime are replayed last. The
// epoch advances by one restart.
func (m *Master) Restore(snap Snapshot, rescueWindow time.Duration) {
	if m.down {
		m.rec.Downtime += m.eng.Now().Sub(m.downSince)
	}
	m.down = false
	m.epoch = snap.Epoch + 1
	m.nextID = snap.NextID
	m.completeCount = snap.CompleteCount
	m.fstats = snap.Failures
	for i := range snap.Tasks {
		t := m.allocTask()
		*t = snap.Tasks[i]
		m.setTask(t)
	}
	for _, id := range snap.QueueOrder {
		t := m.byID[id]
		m.waiting.Push(id, t.Priority, t.Resources, m.catIDFor(t))
	}
	m.ostats = snap.Overload
	m.notePeakWaiting()
	for _, id := range snap.AdmissionBuffer {
		m.admQueue = append(m.admQueue, id)
		m.admSet[id] = struct{}{}
	}
	if len(m.admQueue) > 0 {
		// Still deflecting: a fresh overload interval opens at restore
		// time (the downtime itself was already accounted at Crash).
		m.enterOverload()
	}
	now := m.eng.Now()
	for _, rr := range snap.RetryResume {
		d := rr.Resume.Sub(now)
		if d < 0 {
			d = 0
		}
		m.scheduleRetry(m.byID[rr.ID], d)
	}
	m.rescuable = make(map[int]struct{})
	for i := range snap.Tasks {
		if snap.Tasks[i].State == TaskRunning {
			m.rescuable[snap.Tasks[i].ID] = struct{}{}
		}
	}
	if len(m.rescuable) > 0 {
		if rescueWindow < 0 {
			rescueWindow = 0
		}
		m.rescueTmr = m.eng.After(rescueWindow, "wq-rescue-window", m.expireRescue)
	}
	pending := m.downSubmits
	m.downSubmits = nil
	for _, spec := range pending {
		m.Submit(spec)
	}
	m.rev++
	m.scheduleDispatch()
}

// Epoch returns the number of restarts this master has survived.
func (m *Master) Epoch() int { return m.epoch }

// Down reports whether the master is crashed (between Crash and
// Restore).
func (m *Master) Down() bool { return m.down }

// RecoveryStats returns the rescue/fence counters accumulated across
// the master's restarts.
func (m *Master) RecoveryStats() metrics.RecoveryCounters { return m.rec }

// AttachWorker reattaches a worker after a restart: AddWorker plus
// rescue of the in-flight attempts it reports. An attempt resumes
// only when the restored record still shows the task running on this
// worker at the same generation; anything else — task completed,
// requeued and redispatched, or quarantined while the worker was away
// — is fenced and dropped (the worker discards the stale attempt).
// Rescued attempts finish after their remaining execution time minus
// the downtime already elapsed since detach; they do not consume a
// new retry-budget slot and are not fast-abort armed (their original
// dispatch deadline died with the old master).
func (m *Master) AttachWorker(w WorkerReattach) error {
	if m.down {
		return fmt.Errorf("wq: master is down; Restore before AttachWorker")
	}
	if err := m.AddWorker(w.ID, w.Capacity); err != nil {
		return err
	}
	sw := m.worker(w.ID)
	downFor := m.eng.Now().Sub(w.DetachedAt)
	if downFor < 0 {
		downFor = 0
	}
	for _, it := range w.Inflight {
		t := m.task(it.ID)
		if t == nil || t.State != TaskRunning || t.WorkerID != w.ID || t.Gen != it.Gen {
			m.rec.FencedAttempts++
			continue
		}
		if _, pending := m.rescuable[it.ID]; !pending {
			m.rec.FencedAttempts++
			continue
		}
		delete(m.rescuable, it.ID)
		remaining := it.Remaining - downFor
		if remaining < 0 {
			remaining = 0
		}
		m.rescue(sw, t, remaining)
	}
	if len(m.rescuable) == 0 {
		m.rescueTmr.Stop()
	}
	return nil
}

// rescue resumes a running task on its reattached worker for the
// remaining execution time. Attempts and Gen are untouched: this is
// the same attempt continuing, not a redispatch.
func (m *Master) rescue(w *simWorker, t *Task, remaining time.Duration) {
	if err := w.pool.Acquire(t.Allocated); err != nil {
		// The reported allocation no longer fits (inconsistent reattach
		// record); treat it like an unrescued task rather than corrupt
		// the pool accounting.
		m.rec.FencedAttempts++
		if m.failAttemptCharged(t, false) {
			m.enqueueFront([]int{t.ID})
		}
		return
	}
	m.syncAvail(w)
	if w.running.len() == 0 && !w.draining {
		m.idleCount--
	}
	m.runningCount++
	m.totalUsed = m.totalUsed.Add(t.Allocated)
	rt := m.newRunningTask()
	rt.task, rt.worker = t, w
	rt.aborted = false
	rt.pending = 0
	w.running.put(rt)
	rt.executing = true
	rt.execStart = m.eng.Elapsed()
	rt.execUsage = t.Profile.Usage().Min(t.Allocated)
	m.busyUsage = m.busyUsage.Add(rt.execUsage)
	rt.execTmr = m.eng.After(remaining, "wq-exec", rt.execDone)
	m.rec.RescuedTasks++
}

// expireRescue requeues every running task whose worker did not
// reattach within the rescue window. The lost attempt is charged to
// the master's downtime, not the task: backoff applies, the retry
// budget does not.
func (m *Master) expireRescue() {
	ids := make([]int, 0, len(m.rescuable))
	for id := range m.rescuable {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	m.rescuable = nil
	var requeued []int
	for _, id := range ids {
		t := m.byID[id]
		m.rec.RequeuedUnrescued++
		m.fstats.Requeues++
		if m.failAttemptCharged(t, false) {
			requeued = append(requeued, id)
		}
	}
	m.enqueueFront(requeued)
}

// CompletedTags returns the Tag of every completed task, ordered by
// task ID — the master-side completion record a restarted workflow
// engine folds into its journal replay (flow.Recover's extraDone).
func (m *Master) CompletedTags() []string { return m.tagsInState(TaskComplete) }

// QuarantinedTags returns the Tag of every permanently failed task,
// ordered by task ID (flow.Recover's extraFailed).
func (m *Master) QuarantinedTags() []string { return m.tagsInState(TaskQuarantined) }

func (m *Master) tagsInState(st TaskState) []string {
	tags := make([]string, 0)
	for id := 1; id < len(m.byID); id++ {
		if t := m.byID[id]; t != nil && t.State == st {
			tags = append(tags, t.Tag)
		}
	}
	return tags
}
