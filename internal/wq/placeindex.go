package wq

import "hta/internal/resources"

// availIndex is a segment tree over roster slots keyed by each
// worker's available capacity. Internal nodes hold the component-wise
// Max of their children, so FirstFit placement descends leftmost-fit
// in ~O(log W) instead of scanning the roster, and the pass-wide
// maxFree bound is the root in O(1). Draining workers and tombstoned
// slots carry resources.Zero and are never selected (every placeable
// request has a positive component).
//
// The component-wise max of a subtree is necessary but not sufficient
// for a fit (the max CPU and max memory may come from different
// workers), so the descent may probe a subtree that turns out empty
// and continue right; with the near-homogeneous pools HTC deployments
// run, that path is cold.
// The tree is 4-ary: over a 100k-worker roster a leaf-to-root walk is
// 9 levels instead of 17, and levels — each a likely cache miss on a
// multi-megabyte node array — dominate the cost of both set and the
// descent. The wider node costs two extra Max/Fits per level, which
// are register-resident arithmetic.
type availIndex struct {
	n    int                // leaf count, power of four (0 = empty)
	base int                // index of the first leaf: (n-1)/3
	node []resources.Vector // 0-based; children of i at 4i+1..4i+4
}

// reset rebuilds the tree for the given leaf values.
func (ix *availIndex) reset(leaves []resources.Vector) {
	if len(leaves) == 0 {
		ix.n, ix.base, ix.node = 0, 0, nil
		return
	}
	ix.n = 1
	for ix.n < len(leaves) {
		ix.n *= 4
	}
	ix.base = (ix.n - 1) / 3
	ix.node = make([]resources.Vector, ix.base+ix.n)
	copy(ix.node[ix.base:], leaves)
	ix.rebuild()
}

func (ix *availIndex) rebuild() {
	for i := ix.base - 1; i >= 0; i-- {
		c := 4*i + 1
		ix.node[i] = ix.node[c].Max(ix.node[c+1]).Max(ix.node[c+2].Max(ix.node[c+3]))
	}
}

// ensure grows the tree to hold at least slots leaves, preserving
// existing values.
func (ix *availIndex) ensure(slots int) {
	if slots <= ix.n {
		return
	}
	old := ix.node
	oldN, oldBase := ix.n, ix.base
	n := ix.n
	if n == 0 {
		n = 1
	}
	for n < slots {
		n *= 4
	}
	ix.n = n
	ix.base = (n - 1) / 3
	ix.node = make([]resources.Vector, ix.base+n)
	if oldN > 0 {
		copy(ix.node[ix.base:], old[oldBase:oldBase+oldN])
	}
	ix.rebuild()
}

// set updates the leaf for a slot and re-aggregates its ancestors.
func (ix *availIndex) set(slot int, v resources.Vector) {
	i := ix.base + slot
	if ix.node[i] == v {
		return
	}
	ix.node[i] = v
	for i > 0 {
		i = (i - 1) / 4
		c := 4*i + 1
		agg := ix.node[c].Max(ix.node[c+1]).Max(ix.node[c+2].Max(ix.node[c+3]))
		if agg == ix.node[i] {
			break
		}
		ix.node[i] = agg
	}
}

// maxFree returns the component-wise maximum available capacity over
// all slots — the root aggregate.
func (ix *availIndex) maxFree() resources.Vector {
	if ix.n == 0 {
		return resources.Zero
	}
	return ix.node[0]
}

// findFirst returns the lowest slot whose available capacity fits
// res, or -1. Roster slots are assigned in join order and compaction
// preserves relative order, so lowest slot = first fit in join order,
// matching the retained linear scan exactly.
func (ix *availIndex) findFirst(res resources.Vector) int {
	if ix.n == 0 || !res.Fits(ix.node[0]) {
		return -1
	}
	return ix.search(0, res)
}

func (ix *availIndex) search(i int, res resources.Vector) int {
	if i >= ix.base {
		return i - ix.base
	}
	c := 4*i + 1
	for k := 0; k < 4; k++ {
		if res.Fits(ix.node[c+k]) {
			if s := ix.search(c+k, res); s >= 0 {
				return s
			}
		}
	}
	return -1
}

// --- master-side maintenance ---

// syncAvail refreshes a worker's leaf after any allocation, release,
// or draining change. Draining workers index as Zero so placement
// never selects them.
func (m *Master) syncAvail(w *simWorker) {
	if m.naivePlace || w.slot < 0 {
		return
	}
	if w.draining {
		m.avail.set(w.slot, resources.Zero)
		return
	}
	m.avail.set(w.slot, w.pool.Available())
}

// rosterAppend assigns the next slot to a joining worker.
func (m *Master) rosterAppend(w *simWorker) {
	w.slot = len(m.roster)
	m.roster = append(m.roster, w)
	if m.naivePlace {
		m.naiveOrder = append(m.naiveOrder, w.id)
		return
	}
	m.avail.ensure(len(m.roster))
	m.avail.set(w.slot, w.pool.Available())
}

// rosterRemove tombstones a departing worker's slot, compacting the
// roster (preserving join order) once tombstones dominate.
func (m *Master) rosterRemove(w *simWorker) {
	if w.slot < 0 {
		return
	}
	m.roster[w.slot] = nil
	if m.naivePlace {
		// The retained O(W) splice, as the pre-index roster paid.
		for i, id := range m.naiveOrder {
			if id == w.id {
				m.naiveOrder = append(m.naiveOrder[:i], m.naiveOrder[i+1:]...)
				break
			}
		}
	} else {
		m.avail.set(w.slot, resources.Zero)
	}
	w.slot = -1
	m.tombs++
	if m.tombs > 64 && m.tombs > len(m.roster)/2 {
		m.compactRoster()
	}
}

func (m *Master) compactRoster() {
	live := m.roster[:0]
	for _, w := range m.roster {
		if w != nil {
			w.slot = len(live)
			live = append(live, w)
		}
	}
	for i := len(live); i < len(m.roster); i++ {
		m.roster[i] = nil
	}
	m.roster = live
	m.tombs = 0
	if m.naivePlace {
		return
	}
	leaves := make([]resources.Vector, len(live))
	for i, w := range live {
		if !w.draining {
			leaves[i] = w.pool.Available()
		}
	}
	m.avail.reset(leaves)
}

// SetNaivePlacement switches FirstFit placement (and the maxFree
// bound) to the retained pre-index linear roster scan — the oracle
// the placement differential tests compare against, as kubesim's
// SetNaiveScheduling does for its scheduler index.
func (m *Master) SetNaivePlacement(naive bool) {
	if m.naivePlace == naive {
		return
	}
	m.naivePlace = naive
	if naive {
		m.avail = availIndex{}
		m.naiveOrder = m.naiveOrder[:0]
		for _, w := range m.roster {
			if w != nil {
				m.naiveOrder = append(m.naiveOrder, w.id)
			}
		}
	} else {
		m.naiveOrder = nil
		leaves := make([]resources.Vector, len(m.roster))
		for i, w := range m.roster {
			if w != nil && !w.draining {
				leaves[i] = w.pool.Available()
			}
		}
		m.avail.reset(leaves)
	}
	m.rev++
	m.scheduleDispatch()
}
