package wq

import (
	"testing"
	"time"

	"hta/internal/resources"
)

// meanEstimator serves a constant exec-time mean for every category.
type meanEstimator struct{ mean time.Duration }

func (e meanEstimator) EstimateResources(string) (resources.Vector, bool) {
	return resources.Zero, false
}
func (e meanEstimator) EstimateExecTime(string) (time.Duration, bool) {
	return e.mean, e.mean > 0
}

func TestKillWorkerBackoffDelaysRequeue(t *testing.T) {
	eng, m := newMaster(t)
	m.SetRetryPolicy(RetryPolicy{BackoffBase: 30 * time.Second, BackoffMax: 2 * time.Minute})
	m.AddWorker("w1", resources.New(4, 16384, 1000))
	id := m.Submit(knownTask("align", 1, time.Hour))
	eng.RunUntil(t0.Add(time.Minute))

	if err := m.KillWorker("w1"); err != nil {
		t.Fatal(err)
	}
	if got := m.WaitingRetries(); got != 1 {
		t.Fatalf("WaitingRetries = %d, want 1", got)
	}
	if s := m.Stats(); s.Waiting != 1 {
		t.Fatalf("Stats.Waiting = %d, want 1 (backoff task counted)", s.Waiting)
	}
	// The task must not re-enter the queue before the backoff elapses.
	eng.RunUntil(t0.Add(time.Minute + 29*time.Second))
	if tk, _ := m.Task(id); tk.State != TaskWaiting {
		t.Fatalf("state before backoff = %v", tk.State)
	}
	if m.waiting.Len() != 0 {
		t.Fatalf("task requeued before backoff elapsed")
	}
	m.AddWorker("w2", resources.New(4, 16384, 1000))
	eng.RunUntil(t0.Add(2 * time.Minute))
	if tk, _ := m.Task(id); tk.State != TaskRunning || tk.WorkerID != "w2" {
		t.Fatalf("after backoff: state=%v worker=%q", tk.State, tk.WorkerID)
	}
	if tk, _ := m.Task(id); tk.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", tk.Attempts)
	}
}

func TestRetryBudgetQuarantine(t *testing.T) {
	eng, m := newMaster(t)
	m.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	var failed []Task
	m.OnTaskFailed(func(tk Task) { failed = append(failed, tk) })

	id := m.Submit(knownTask("align", 1, time.Hour))
	for i := 0; i < 3; i++ {
		m.AddWorker("w", resources.New(4, 16384, 1000))
		eng.RunUntil(eng.Now().Add(time.Minute))
		if tk, _ := m.Task(id); tk.State != TaskRunning {
			t.Fatalf("attempt %d: state = %v", i+1, tk.State)
		}
		if err := m.KillWorker("w"); err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(eng.Now().Add(time.Second))
	}
	tk, _ := m.Task(id)
	if tk.State != TaskQuarantined {
		t.Fatalf("state after 3 failed attempts = %v, want quarantined", tk.State)
	}
	if len(failed) != 1 || failed[0].ID != id {
		t.Fatalf("OnTaskFailed fired %d times (%v), want once for task %d", len(failed), failed, id)
	}
	fs := m.FailureStats()
	if fs.Quarantined != 1 || fs.WorkerKills != 3 || fs.Requeues != 3 {
		t.Fatalf("FailureStats = %+v", fs)
	}
	if fs.LostCoreSeconds <= 0 {
		t.Fatalf("LostCoreSeconds = %v, want > 0", fs.LostCoreSeconds)
	}
	// A quarantined task never re-enters the queue.
	m.AddWorker("w-late", resources.New(4, 16384, 1000))
	eng.Run()
	if tk, _ := m.Task(id); tk.State != TaskQuarantined {
		t.Fatalf("quarantined task was resubmitted: %v", tk.State)
	}
	if s := m.Stats(); s.Quarantined != 1 || s.Waiting != 0 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestFastAbortKillsStraggler(t *testing.T) {
	eng, m := newMaster(t)
	m.SetEstimator(meanEstimator{mean: 10 * time.Second})
	m.SetRetryPolicy(RetryPolicy{FastAbortMultiplier: 3})
	m.AddWorker("w1", resources.New(4, 16384, 1000))
	m.AddWorker("w2", resources.New(4, 16384, 1000))

	fast := m.Submit(knownTask("align", 1, 10*time.Second))
	straggler := m.Submit(knownTask("align", 1, 5*time.Minute))
	eng.RunUntil(t0.Add(29 * time.Second))
	if tk, _ := m.Task(straggler); tk.State != TaskRunning || tk.Attempts != 1 {
		t.Fatalf("straggler before deadline: %+v", tk)
	}
	// Deadline = 3 × 10 s from dispatch; the straggler is aborted and
	// resubmitted, landing back on a worker as a second attempt.
	eng.RunUntil(t0.Add(40 * time.Second))
	tk, _ := m.Task(straggler)
	if tk.Attempts != 2 {
		t.Fatalf("straggler Attempts = %d, want 2 (fast-abort resubmit)", tk.Attempts)
	}
	fs := m.FailureStats()
	if fs.FastAborts != 1 {
		t.Fatalf("FastAborts = %d, want 1", fs.FastAborts)
	}
	if tk, _ := m.Task(fast); tk.State != TaskComplete {
		t.Fatalf("fast task state = %v", tk.State)
	}
	if fs.UsefulCoreSeconds <= 0 || fs.LostCoreSeconds <= 0 {
		t.Fatalf("core-second accounting: %+v", fs)
	}
	if g := fs.Goodput(); g <= 0 || g >= 1 {
		t.Fatalf("Goodput = %v, want in (0,1)", g)
	}
}

func TestCancelDuringBackoff(t *testing.T) {
	eng, m := newMaster(t)
	m.SetRetryPolicy(RetryPolicy{BackoffBase: time.Minute})
	m.AddWorker("w1", resources.New(4, 16384, 1000))
	id := m.Submit(knownTask("align", 1, time.Hour))
	eng.RunUntil(t0.Add(time.Second))
	if err := m.KillWorker("w1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if m.WaitingRetries() != 0 {
		t.Fatalf("retry timer survived cancel")
	}
	m.AddWorker("w2", resources.New(4, 16384, 1000))
	eng.Run()
	if tk, _ := m.Task(id); tk.State != TaskCanceled {
		t.Fatalf("state = %v, want canceled", tk.State)
	}
}

func TestBackoffDoubling(t *testing.T) {
	p := RetryPolicy{BackoffBase: 10 * time.Second, BackoffMax: time.Minute}
	want := []time.Duration{10 * time.Second, 20 * time.Second, 40 * time.Second, time.Minute, time.Minute}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := (RetryPolicy{}).backoff(3); got != 0 {
		t.Errorf("zero policy backoff = %v, want 0", got)
	}
}
