package wq

import (
	"time"

	"hta/internal/metrics"
)

// AdmissionPolicy bounds the master's waiting queue under overload.
// In an open system (continuous submission stream) an unbounded queue
// turns a transient burst into unbounded latency for everything behind
// it; bounded admission converts the excess into explicit backpressure
// instead. The zero value disables admission control (classic Work
// Queue: accept everything).
type AdmissionPolicy struct {
	// MaxWaiting caps the number of queued tasks admitted for
	// dispatch. Submissions arriving with the queue at the cap park in
	// the admission buffer. 0 = unbounded.
	MaxWaiting int
	// BufferDepth is the admission-buffer capacity past MaxWaiting.
	// Submissions arriving with the buffer full are shed: recorded
	// with a Rejected outcome and never executed. 0 = shed immediately
	// at the cap.
	BufferDepth int
}

// Enabled reports whether the policy bounds the queue.
func (p AdmissionPolicy) Enabled() bool { return p.MaxWaiting > 0 }

// SetAdmissionPolicy installs the admission policy. Lowering the cap
// does not evict already-queued tasks; raising it admits buffered
// submissions immediately.
func (m *Master) SetAdmissionPolicy(p AdmissionPolicy) {
	m.admission = p
	m.drainAdmission()
}

// AdmissionPolicy returns the current admission policy.
func (m *Master) AdmissionPolicy() AdmissionPolicy { return m.admission }

// OnRejected subscribes to shed submissions. The callback receives a
// copy of the task and fires from a zero-delay event, never
// re-entrantly from inside Submit.
func (m *Master) OnRejected(fn func(Task)) { m.onRejected = append(m.onRejected, fn) }

// OverloadStats returns the admission-control counters, with any
// open overload interval counted up to now.
func (m *Master) OverloadStats() metrics.OverloadCounters {
	s := m.ostats
	if m.inOverload {
		s.TimeInOverload += m.eng.Now().Sub(m.overloadSince)
	}
	return s
}

// QueuedCount returns the number of tasks in the waiting queue proper
// (excluding retry backoffs, rescue windows and the admission
// buffer). With admission enabled this never exceeds
// AdmissionPolicy.MaxWaiting except transiently through requeues of
// already-admitted work.
func (m *Master) QueuedCount() int { return m.waiting.Len() }

// BufferedCount returns the number of submissions parked in the
// admission buffer.
func (m *Master) BufferedCount() int { return len(m.admQueue) }

// ShedCount returns the number of submissions rejected at the hard
// cap.
func (m *Master) ShedCount() int { return m.ostats.Shed }

// admit routes a freshly submitted task: into the queue while below
// the cap, into the admission buffer while overloaded, shed past the
// buffer. Requeues of already-dispatched work bypass admission (see
// enqueueFront) — they were admitted once and are still owed
// execution.
func (m *Master) admit(t *Task) {
	if m.admission.MaxWaiting > 0 && m.waiting.Len() >= m.admission.MaxWaiting {
		m.enterOverload()
		if len(m.admQueue) < m.admission.BufferDepth {
			m.admQueue = append(m.admQueue, t.ID)
			m.admSet[t.ID] = struct{}{}
			m.ostats.Buffered++
			if n := len(m.admQueue); n > m.ostats.PeakBuffered {
				m.ostats.PeakBuffered = n
			}
			return
		}
		m.shed(t)
		return
	}
	m.enqueue(t)
}

// enqueue pushes an admitted task at the back of the waiting queue.
func (m *Master) enqueue(t *Task) {
	m.waiting.Push(t.ID, t.Priority, t.Resources, m.catIDFor(t))
	m.notePeakWaiting()
	m.rev++
	m.scheduleDispatch()
}

// notePeakWaiting records the waiting-queue high-water mark; called
// from every queue-growth site (Submit, requeues, buffer drain).
func (m *Master) notePeakWaiting() {
	if n := m.waiting.Len(); n > m.ostats.PeakWaiting {
		m.ostats.PeakWaiting = n
	}
}

// shed rejects a submission at the hard cap. The task keeps its ID
// (SubmittedCount stays the total ever submitted) and is recorded
// with the terminal Rejected state; subscribers are notified from a
// zero-delay event, matching quarantine.
func (m *Master) shed(t *Task) {
	t.State = TaskRejected
	t.FinishedAt = m.eng.Now()
	m.ostats.Shed++
	if len(m.onRejected) > 0 {
		cp := *t
		m.eng.After(0, "wq-task-rejected", func() {
			for _, fn := range m.onRejected {
				fn(cp)
			}
		})
	}
}

// drainAdmission moves buffered submissions into the waiting queue,
// in arrival order, while there is room under the cap, and closes the
// overload interval once the buffer is empty and the queue is back
// under the cap. Called after dispatch passes and cancellations —
// never from inside a queue Scan.
func (m *Master) drainAdmission() {
	k := 0
	for k < len(m.admQueue) && (m.admission.MaxWaiting <= 0 || m.waiting.Len() < m.admission.MaxWaiting) {
		id := m.admQueue[k]
		delete(m.admSet, id)
		m.enqueue(m.byID[id])
		k++
	}
	if k > 0 {
		n := copy(m.admQueue, m.admQueue[k:])
		m.admQueue = m.admQueue[:n]
	}
	if m.inOverload && len(m.admQueue) == 0 &&
		(m.admission.MaxWaiting <= 0 || m.waiting.Len() < m.admission.MaxWaiting) {
		m.exitOverload()
	}
}

// cancelBuffered removes a canceled task from the admission buffer.
// Returns false when the task is not buffered.
func (m *Master) cancelBuffered(id int) bool {
	if _, ok := m.admSet[id]; !ok {
		return false
	}
	delete(m.admSet, id)
	for i, bid := range m.admQueue {
		if bid == id {
			m.admQueue = append(m.admQueue[:i], m.admQueue[i+1:]...)
			break
		}
	}
	return true
}

func (m *Master) enterOverload() {
	if m.inOverload {
		return
	}
	m.inOverload = true
	m.overloadSince = m.eng.Now()
}

func (m *Master) exitOverload() {
	if !m.inOverload {
		return
	}
	m.inOverload = false
	m.ostats.TimeInOverload += m.eng.Now().Sub(m.overloadSince)
}

// CategoryQueueAges returns, for every category with tasks in the
// waiting queue, the age of its oldest queued task — the per-category
// staleness signal an operator watches under overload (a category
// whose head-of-line age keeps growing is starved). Walks the queue;
// call it from samplers, not hot paths.
func (m *Master) CategoryQueueAges() map[string]time.Duration {
	if m.waiting.Len() == 0 {
		return nil
	}
	now := m.eng.Now()
	out := make(map[string]time.Duration)
	m.waiting.ForEach(func(id int) {
		t := m.byID[id]
		age := now.Sub(t.SubmittedAt)
		if cur, ok := out[t.Category]; !ok || age > cur {
			out[t.Category] = age
		}
	})
	return out
}

// OldestQueuedAge returns the age of the oldest task in the waiting
// queue, or 0 when the queue is empty.
func (m *Master) OldestQueuedAge() time.Duration {
	var oldest time.Duration
	now := m.eng.Now()
	m.waiting.ForEach(func(id int) {
		if age := now.Sub(m.byID[id].SubmittedAt); age > oldest {
			oldest = age
		}
	})
	return oldest
}
