package wq

import (
	"fmt"
	"sort"
	"time"

	"hta/internal/netsim"
	"hta/internal/resources"
	"hta/internal/simclock"
)

// Policy selects which fitting worker receives a task.
type Policy int

// Dispatch policies.
const (
	// FirstFit takes the first worker (in join order) with room —
	// Work Queue's default; cheap and keeps later workers drainable.
	FirstFit Policy = iota
	// BestFit takes the worker whose free capacity after placement
	// is smallest, consolidating load onto few workers.
	BestFit
	// WorstFit takes the worker with the most free capacity,
	// spreading load evenly.
	WorstFit
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Master is the simulated Work Queue master. It owns the task queue,
// the set of connected workers, and the dispatch policy. All methods
// must be called from the simulation goroutine.
type Master struct {
	eng    *simclock.Engine
	link   *netsim.Link // master egress; nil = transfers are free
	policy Policy

	nextID  int
	tasks   map[int]*Task
	waiting []int // FIFO queue of waiting task IDs

	workers     map[string]*simWorker
	workerOrder []string

	estimator  Estimator
	onComplete []func(Result)

	dispatchPending bool
	completeCount   int
}

// simWorker is the master-side state of a simulated worker.
type simWorker struct {
	id       string
	pool     *resources.Pool
	cache    map[string]bool     // shared files present
	fetching map[string][]func() // shared files in flight -> waiters
	fetches  map[string]*netsim.Transfer
	running  map[int]*runningTask
	draining bool
	onDrain  func()
	joinedAt time.Time
}

type runningTask struct {
	task      *Task
	worker    *simWorker
	pending   int // outstanding input fetches
	inTr      *netsim.Transfer
	outTr     *netsim.Transfer
	execTmr   *simclock.Timer
	executing bool
}

// NewMaster creates a master on the given engine. link models the
// master's egress bandwidth; pass nil to make data movement free.
func NewMaster(eng *simclock.Engine, link *netsim.Link) *Master {
	return &Master{
		eng:     eng,
		link:    link,
		tasks:   make(map[int]*Task),
		workers: make(map[string]*simWorker),
	}
}

// SetPolicy selects the dispatch policy (default FirstFit).
func (m *Master) SetPolicy(p Policy) {
	m.policy = p
	m.scheduleDispatch()
}

// Policy returns the current dispatch policy.
func (m *Master) Policy() Policy { return m.policy }

// SetEstimator installs the resource estimator consulted for tasks
// with unknown requirements.
func (m *Master) SetEstimator(e Estimator) {
	m.estimator = e
	m.scheduleDispatch()
}

// OnComplete subscribes to task completions.
func (m *Master) OnComplete(fn func(Result)) { m.onComplete = append(m.onComplete, fn) }

// Submit enqueues a task and returns its ID.
func (m *Master) Submit(spec TaskSpec) int {
	m.nextID++
	t := &Task{
		ID:          m.nextID,
		TaskSpec:    spec,
		State:       TaskWaiting,
		SubmittedAt: m.eng.Now(),
	}
	t.SharedInputs = append([]File(nil), spec.SharedInputs...)
	m.tasks[t.ID] = t
	m.waiting = append(m.waiting, t.ID)
	m.scheduleDispatch()
	return t.ID
}

// Task returns a copy of the task with the given ID.
func (m *Master) Task(id int) (Task, bool) {
	t, ok := m.tasks[id]
	if !ok {
		return Task{}, false
	}
	return *t, true
}

// AddWorker connects a worker with the given capacity.
func (m *Master) AddWorker(id string, capacity resources.Vector) error {
	if id == "" {
		return fmt.Errorf("wq: worker with empty id")
	}
	if _, dup := m.workers[id]; dup {
		return fmt.Errorf("wq: worker %q already connected", id)
	}
	if !capacity.AnyPositive() {
		return fmt.Errorf("wq: worker %q with no capacity", id)
	}
	m.workers[id] = &simWorker{
		id:       id,
		pool:     resources.NewPool(capacity),
		cache:    make(map[string]bool),
		fetching: make(map[string][]func()),
		fetches:  make(map[string]*netsim.Transfer),
		running:  make(map[int]*runningTask),
		joinedAt: m.eng.Now(),
	}
	m.workerOrder = append(m.workerOrder, id)
	m.scheduleDispatch()
	return nil
}

// DrainWorker stops dispatching to the worker and invokes onDrained
// once its running tasks finish (immediately if it is idle). The
// worker is removed from the roster when drained.
func (m *Master) DrainWorker(id string, onDrained func()) error {
	w, ok := m.workers[id]
	if !ok {
		return fmt.Errorf("wq: worker %q not connected", id)
	}
	w.draining = true
	w.onDrain = onDrained
	if len(w.running) == 0 {
		m.finishDrain(w)
	}
	return nil
}

// KillWorker abruptly disconnects a worker: its running tasks are
// returned to the waiting queue (preserving submission order) and all
// of its transfers are canceled. This is what a pod deletion does to
// the worker inside it.
func (m *Master) KillWorker(id string) error {
	w, ok := m.workers[id]
	if !ok {
		return fmt.Errorf("wq: worker %q not connected", id)
	}
	var requeued []int
	for _, rt := range w.running {
		rt.stop()
		t := rt.task
		t.State = TaskWaiting
		t.Allocated = resources.Zero
		t.Exclusive = false
		requeued = append(requeued, t.ID)
	}
	for _, tr := range w.fetches {
		tr.Cancel()
	}
	m.removeWorker(w)
	// Requeue at the front in submission order: these are the oldest
	// outstanding tasks.
	sort.Ints(requeued)
	m.waiting = append(requeued, m.waiting...)
	m.scheduleDispatch()
	return nil
}

func (rt *runningTask) stop() {
	if rt.inTr != nil {
		rt.inTr.Cancel()
	}
	if rt.outTr != nil {
		rt.outTr.Cancel()
	}
	if rt.execTmr != nil {
		rt.execTmr.Stop()
	}
	rt.executing = false
}

func (m *Master) removeWorker(w *simWorker) {
	delete(m.workers, w.id)
	for i, id := range m.workerOrder {
		if id == w.id {
			m.workerOrder = append(m.workerOrder[:i], m.workerOrder[i+1:]...)
			break
		}
	}
}

func (m *Master) finishDrain(w *simWorker) {
	m.removeWorker(w)
	if w.onDrain != nil {
		cb := w.onDrain
		w.onDrain = nil
		m.eng.After(0, "wq-drained-"+w.id, cb)
	}
	m.scheduleDispatch()
}

// Workers returns the connected worker IDs in join order.
func (m *Master) Workers() []string { return append([]string(nil), m.workerOrder...) }

// WorkerCapacity returns a connected worker's capacity.
func (m *Master) WorkerCapacity(id string) (resources.Vector, bool) {
	w, ok := m.workers[id]
	if !ok {
		return resources.Zero, false
	}
	return w.pool.Capacity(), true
}

// WorkerUsage reports the instantaneous resource consumption of the
// worker's executing tasks (transfer phases consume no CPU), clamped
// to each task's allocation — the signal a metrics server scrapes
// from the worker pod.
func (m *Master) WorkerUsage(id string) resources.Vector {
	w, ok := m.workers[id]
	if !ok {
		return resources.Zero
	}
	var u resources.Vector
	for _, rt := range w.running {
		if rt.executing {
			u = u.Add(rt.task.Profile.Usage().Min(rt.task.Allocated))
		}
	}
	return u
}

// WorkerBusy reports whether the worker has running tasks.
func (m *Master) WorkerBusy(id string) bool {
	w, ok := m.workers[id]
	return ok && len(w.running) > 0
}

// --- dispatch ---

// scheduleDispatch coalesces dispatch passes into a single
// zero-delay event.
func (m *Master) scheduleDispatch() {
	if m.dispatchPending {
		return
	}
	m.dispatchPending = true
	m.eng.After(0, "wq-dispatch", func() {
		m.dispatchPending = false
		m.dispatchOnce()
	})
}

// resolveResources determines the allocation for a task: declared
// size, an estimator prediction for its category, or unknown.
func (m *Master) resolveResources(t *Task) (resources.Vector, bool) {
	if !t.Resources.IsZero() {
		return t.Resources, true
	}
	if m.estimator != nil {
		if v, ok := m.estimator.EstimateResources(t.Category); ok && !v.IsZero() {
			return v, true
		}
	}
	return resources.Zero, false
}

// dispatchOnce scans the waiting queue — highest priority first,
// submission order within a priority — and places every task that
// fits somewhere (later tasks may backfill around a blocked
// head-of-line task, as Work Queue does).
func (m *Master) dispatchOnce() {
	if len(m.waiting) == 0 || len(m.workers) == 0 {
		return
	}
	order := append([]int(nil), m.waiting...)
	sort.SliceStable(order, func(i, j int) bool {
		return m.tasks[order[i]].Priority > m.tasks[order[j]].Priority
	})
	placed := make(map[int]bool)
	for _, id := range order {
		t := m.tasks[id]
		res, known := m.resolveResources(t)
		var ok bool
		if known {
			ok = m.placeKnown(t, res)
		} else {
			ok = m.placeExclusive(t)
		}
		if ok {
			placed[id] = true
		}
	}
	still := m.waiting[:0]
	for _, id := range m.waiting {
		if !placed[id] {
			still = append(still, id)
		}
	}
	m.waiting = still
}

// Cancel withdraws a task. A waiting task leaves the queue; a running
// task is stopped on its worker and its allocation freed. Canceling a
// finished or already-canceled task is an error. No completion
// callback fires for canceled tasks.
func (m *Master) Cancel(id int) error {
	t, ok := m.tasks[id]
	if !ok {
		return fmt.Errorf("wq: task %d not found", id)
	}
	switch t.State {
	case TaskWaiting:
		for i, wid := range m.waiting {
			if wid == id {
				m.waiting = append(m.waiting[:i], m.waiting[i+1:]...)
				break
			}
		}
	case TaskRunning:
		w := m.workers[t.WorkerID]
		if w == nil {
			return fmt.Errorf("wq: task %d running on unknown worker %q", id, t.WorkerID)
		}
		rt := w.running[id]
		rt.stop()
		delete(w.running, id)
		w.pool.Release(t.Allocated)
		if w.draining && len(w.running) == 0 {
			defer m.finishDrain(w)
		}
		m.scheduleDispatch()
	default:
		return fmt.Errorf("wq: task %d is %v, cannot cancel", id, t.State)
	}
	t.State = TaskCanceled
	t.FinishedAt = m.eng.Now()
	return nil
}

func (m *Master) placeKnown(t *Task, res resources.Vector) bool {
	var chosen *simWorker
	var chosenFree int64
	for _, wid := range m.workerOrder {
		w := m.workers[wid]
		if w.draining || !w.pool.CanFit(res) {
			continue
		}
		if m.policy == FirstFit {
			chosen = w
			break
		}
		// Score by free CPU after placement (the binding dimension
		// for HTC tasks); memory breaks ties implicitly via order.
		free := w.pool.Available().Sub(res).MilliCPU
		better := chosen == nil ||
			(m.policy == BestFit && free < chosenFree) ||
			(m.policy == WorstFit && free > chosenFree)
		if better {
			chosen, chosenFree = w, free
		}
	}
	if chosen == nil {
		return false
	}
	m.startTask(t, chosen, res, false)
	return true
}

func (m *Master) placeExclusive(t *Task) bool {
	for _, wid := range m.workerOrder {
		w := m.workers[wid]
		if w.draining || !w.pool.Used().IsZero() {
			continue
		}
		m.startTask(t, w, w.pool.Capacity(), true)
		return true
	}
	return false
}

func (m *Master) startTask(t *Task, w *simWorker, alloc resources.Vector, exclusive bool) {
	if err := w.pool.Acquire(alloc); err != nil {
		panic(fmt.Sprintf("wq: dispatch accounting bug: %v", err))
	}
	t.State = TaskRunning
	t.WorkerID = w.id
	t.StartedAt = m.eng.Now()
	t.Attempts++
	t.Allocated = alloc
	t.Exclusive = exclusive
	rt := &runningTask{task: t, worker: w}
	w.running[t.ID] = rt

	// Input staging: shared files are fetched once per worker and
	// shared by all its tasks; the private input belongs to the task.
	rt.pending = 1 // barrier released after all fetches are set up
	for _, f := range t.SharedInputs {
		if w.cache[f.Name] {
			continue
		}
		rt.pending++
		m.ensureFile(w, f, func() { m.fetchDone(rt) })
	}
	if t.InputMB > 0 && m.link != nil {
		rt.pending++
		rt.inTr = m.link.Start(t.InputMB, func() {
			rt.inTr = nil
			m.fetchDone(rt)
		})
	}
	m.fetchDone(rt) // release the setup barrier
}

// ensureFile fetches a shared file onto the worker exactly once;
// callbacks queue while a fetch is in flight.
func (m *Master) ensureFile(w *simWorker, f File, cb func()) {
	if w.cache[f.Name] {
		cb()
		return
	}
	if _, inflight := w.fetching[f.Name]; inflight {
		w.fetching[f.Name] = append(w.fetching[f.Name], cb)
		return
	}
	w.fetching[f.Name] = []func(){cb}
	if m.link == nil || f.SizeMB <= 0 {
		m.eng.After(0, "wq-fetch-free", func() { m.fileArrived(w, f.Name) })
		return
	}
	w.fetches[f.Name] = m.link.Start(f.SizeMB, func() {
		delete(w.fetches, f.Name)
		m.fileArrived(w, f.Name)
	})
}

func (m *Master) fileArrived(w *simWorker, name string) {
	if _, alive := m.workers[w.id]; !alive {
		return
	}
	w.cache[name] = true
	cbs := w.fetching[name]
	delete(w.fetching, name)
	for _, cb := range cbs {
		cb()
	}
}

func (m *Master) fetchDone(rt *runningTask) {
	rt.pending--
	if rt.pending > 0 {
		return
	}
	// All inputs are on the worker: execute.
	t := rt.task
	rt.executing = true
	rt.execTmr = m.eng.After(t.Profile.ExecDuration, "wq-exec", func() {
		rt.execTmr = nil
		rt.executing = false
		m.sendOutput(rt)
	})
}

func (m *Master) sendOutput(rt *runningTask) {
	t := rt.task
	if t.OutputMB > 0 && m.link != nil {
		rt.outTr = m.link.Start(t.OutputMB, func() {
			rt.outTr = nil
			m.completeTask(rt)
		})
		return
	}
	m.completeTask(rt)
}

func (m *Master) completeTask(rt *runningTask) {
	t, w := rt.task, rt.worker
	delete(w.running, t.ID)
	w.pool.Release(t.Allocated)
	t.State = TaskComplete
	t.FinishedAt = m.eng.Now()
	t.ExecWall = t.FinishedAt.Sub(t.StartedAt)
	t.Measured = t.Profile.Usage()
	m.completeCount++
	res := Result{Task: *t}
	for _, fn := range m.onComplete {
		fn(res)
	}
	if w.draining && len(w.running) == 0 {
		m.finishDrain(w)
		return
	}
	m.scheduleDispatch()
}

// --- introspection ---

// Stats is a snapshot of the master's queue and worker pool.
type Stats struct {
	Waiting  int
	Running  int
	Complete int

	Workers         int
	IdleWorkers     int
	DrainingWorkers int

	// Capacity is the summed capacity of connected workers; InUse is
	// the summed allocations of running tasks.
	Capacity resources.Vector
	InUse    resources.Vector
}

// Stats returns the current snapshot.
func (m *Master) Stats() Stats {
	s := Stats{
		Waiting:  len(m.waiting),
		Complete: m.completeCount,
		Workers:  len(m.workers),
	}
	for _, w := range m.workers {
		s.Running += len(w.running)
		s.Capacity = s.Capacity.Add(w.pool.Capacity())
		s.InUse = s.InUse.Add(w.pool.Used())
		if w.draining {
			s.DrainingWorkers++
		} else if len(w.running) == 0 {
			s.IdleWorkers++
		}
	}
	return s
}

// WaitingTasks returns copies of the queued tasks in queue order.
func (m *Master) WaitingTasks() []Task {
	out := make([]Task, 0, len(m.waiting))
	for _, id := range m.waiting {
		out = append(out, *m.tasks[id])
	}
	return out
}

// RunningTasks returns copies of all dispatched tasks, ordered by ID.
func (m *Master) RunningTasks() []Task {
	var out []Task
	for _, wid := range m.workerOrder {
		for _, rt := range m.workers[wid].running {
			out = append(out, *rt.task)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CompletedCount returns the number of completed tasks.
func (m *Master) CompletedCount() int { return m.completeCount }

// WorkerDetail describes one connected worker.
type WorkerDetail struct {
	ID          string
	Capacity    resources.Vector
	InUse       resources.Vector
	Running     int
	CachedFiles int
	Draining    bool
	JoinedAt    time.Time
}

// WorkerDetails returns per-worker state in join order — the data a
// `work_queue_status`-style CLI prints.
func (m *Master) WorkerDetails() []WorkerDetail {
	out := make([]WorkerDetail, 0, len(m.workerOrder))
	for _, id := range m.workerOrder {
		w := m.workers[id]
		out = append(out, WorkerDetail{
			ID:          id,
			Capacity:    w.pool.Capacity(),
			InUse:       w.pool.Used(),
			Running:     len(w.running),
			CachedFiles: len(w.cache),
			Draining:    w.draining,
			JoinedAt:    w.joinedAt,
		})
	}
	return out
}
