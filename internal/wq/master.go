package wq

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"hta/internal/intern"
	"hta/internal/metrics"
	"hta/internal/netsim"
	"hta/internal/resources"
	"hta/internal/simclock"
)

// Policy selects which fitting worker receives a task.
type Policy int

// Dispatch policies.
const (
	// FirstFit takes the first worker (in join order) with room —
	// Work Queue's default; cheap and keeps later workers drainable.
	FirstFit Policy = iota
	// BestFit takes the worker whose free capacity after placement
	// is smallest, consolidating load onto few workers.
	BestFit
	// WorstFit takes the worker with the most free capacity,
	// spreading load evenly.
	WorstFit
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Master is the simulated Work Queue master. It owns the task queue,
// the set of connected workers, and the dispatch policy. All methods
// must be called from the simulation goroutine.
//
// The dispatch hot path is indexed so the master scales in event
// rate: the waiting queue is bucketed by priority (no per-pass sort),
// cancellation removes through a position index, exclusive placement
// pulls from an idle-worker free list instead of scanning the roster,
// and a pass exits early when nothing affecting placement changed or
// when the largest free worker cannot fit the smallest waiting task.
type Master struct {
	eng    *simclock.Engine
	lane   simclock.Lane // engine lane for the master's batch events
	link   *netsim.Link  // master egress; nil = transfers are free
	policy Policy

	// Task ids are dense (1..nextID), so the record index is an
	// id-indexed slice: byID[0] is unused and byID[id] is never nil for
	// an assigned id. A million-task run looks records up by array
	// index instead of hashing a map key per dispatch event.
	nextID   int
	byID     []*Task
	taskSlab []Task // slab-allocated Task storage; see allocTask
	waiting  *waitQueue
	rtFree   []*runningTask // recycled runningTask records
	rtSlab   []runningTask  // allocation slab for fresh records
	wkSlab   []simWorker    // allocation slab for joining workers; see AddWorker

	// Worker ids, shared-file names and task categories are interned
	// into dense int32 ids at the API boundary (AddWorker, Submit,
	// staging), so the per-event books — the worker index, each
	// worker's file cache, the queue's category counts — are
	// slice-indexed instead of string-keyed.
	wids        *intern.Table // worker id -> dense wid
	fids        *intern.Table // shared-file name -> dense fid
	cats        *intern.Table // task category -> dense catID
	workersBy   []*simWorker  // by wid; nil while not connected
	workerCount int
	nextJoinSeq uint64
	idle        idleHeap
	freeFetch   []func() // free-transfer fetch arrivals batched per dispatch

	// Per-category estimator memo, valid for one estimator revision:
	// estRev[catID] holds rev+1 from the last probe (0 = never
	// probed). Only populated when the estimator declares revisions
	// (RevEstimator); otherwise every probe goes to the estimator.
	revEst    RevEstimator
	estRes    []resources.Vector // by catID
	estResOK  []bool             // by catID
	estResRev []uint64           // by catID

	// roster holds workers by slot in join order; departures leave nil
	// tombstones (compacted once they dominate) so slots stay stable
	// for the avail index. avail is the segment tree FirstFit descends
	// instead of scanning; naivePlace retains the linear scan as the
	// placement oracle.
	roster     []*simWorker
	tombs      int
	avail      availIndex
	naivePlace bool
	naiveOrder []string // join-order id list for the retained naive scan

	estimator  Estimator
	onComplete []func(Result)
	onFailed   []func(Task)

	retry        RetryPolicy
	retryPending map[int]simclock.Timer // task ID -> backoff timer
	retryResume  map[int]time.Time      // task ID -> backoff deadline (for Snapshot)
	fstats       FailureStats

	// Bounded admission (see admission.go): submissions past MaxWaiting
	// park in admQueue (FIFO of task IDs) and are shed past its cap.
	admission     AdmissionPolicy
	admQueue      []int
	admSet        map[int]struct{}
	onRejected    []func(Task)
	ostats        metrics.OverloadCounters
	inOverload    bool
	overloadSince time.Time

	// Crash/restore state (see snapshot.go): epoch counts restarts,
	// rescuable holds running tasks awaiting their worker's reattach,
	// down marks the window between Crash and Restore.
	epoch       int
	rescuable   map[int]struct{}
	rescueTmr   simclock.Timer
	down        bool
	downSince   time.Time
	downSubmits []TaskSpec
	rec         metrics.RecoveryCounters

	dispatchPending bool
	dispatchFn      func() // persistent coalesced-dispatch closure
	completeCount   int

	// Incremental aggregates, kept in lockstep with the queue and the
	// worker pools so Stats, BusyCPU and the samplers are O(1).
	runningCount  int
	idleCount     int // idle, non-draining workers
	drainingCount int
	totalCap      resources.Vector // summed capacity of connected workers
	totalUsed     resources.Vector // summed allocations on connected workers
	busyUsage     resources.Vector // summed clamped usage of executing tasks

	// rev is bumped by every mutation that could let a dispatch pass
	// place a task (queue growth, capacity release, policy/estimator
	// change). A pass records the rev it ran at; a pass at an
	// unchanged rev is a guaranteed no-op and returns immediately.
	rev         uint64
	lastPassRev uint64
}

// simWorker is the master-side state of a simulated worker. Shared
// files are tracked by interned fid: the cache is a dense bitmap and
// the in-flight books hash an int32 instead of the file name.
type simWorker struct {
	id       string
	wid      int32 // interned id; index into Master.workersBy
	joinSeq  uint64
	slot     int                // roster index; -1 once removed
	pool     resources.Pool     // embedded: one fewer allocation and cache line per worker
	cache    []bool             // by fid: shared files present
	cached   int                // count of set cache entries
	fetching map[int32][]func() // shared files in flight -> waiters
	fetches  map[int32]*netsim.Transfer
	running  runningSet
	draining bool
	onDrain  func()
	joinedAt time.Time
}

// hasFile reports whether the shared file is cached on the worker.
func (w *simWorker) hasFile(fid int32) bool {
	return int(fid) < len(w.cache) && w.cache[fid]
}

// setFile marks the shared file cached on the worker.
func (w *simWorker) setFile(fid int32) {
	for int(fid) >= len(w.cache) {
		w.cache = append(w.cache, false)
	}
	if !w.cache[fid] {
		w.cache[fid] = true
		w.cached++
	}
}

type runningTask struct {
	task      *Task
	worker    *simWorker
	pending   int // outstanding input fetches
	inTr      *netsim.Transfer
	outTr     *netsim.Transfer
	execTmr   simclock.Timer
	abortTmr  simclock.Timer
	execDone  func() // persistent exec-complete closure (see newRunningTask)
	abortFn   func() // persistent fast-abort closure
	fetchFn   func() // persistent shared-file-arrival closure
	inFn      func() // persistent input-transfer-complete closure
	outFn     func() // persistent output-transfer-complete closure
	executing bool
	aborted   bool             // attempt stopped; late fetch callbacks must not run it
	execUsage resources.Vector // clamped usage while executing
	// execStart is the engine-relative instant execution (not staging)
	// began — an Elapsed() offset, not a time.Time, so the
	// once-per-completion core·second accounting is one integer
	// subtraction instead of wall/mono time arithmetic.
	execStart time.Duration
}

// runningSet holds a worker's in-flight attempts in a pair of small
// parallel slices. A worker runs at most a handful of tasks at once
// (capacity-bound), so linear scans beat a map's hashing and delete
// churn in the dispatch hot path — and the scan compares packed
// int32 ids without dereferencing each attempt's task record.
// Attempts are removed from the set before their record is recycled,
// so every resident entry has a valid task pointer.
type runningSet struct {
	ids []int32
	rts []*runningTask
	// Inline backing for typical multi-core workers: the slices point
	// here until a worker runs more than four tasks at once, so the
	// common roster pays no per-worker set allocation at all. Safe
	// because simWorkers live in slabs and are never copied.
	idsBuf [4]int32
	rtsBuf [4]*runningTask
}

func (s *runningSet) get(id int) *runningTask {
	for i, x := range s.ids {
		if int(x) == id {
			return s.rts[i]
		}
	}
	return nil
}

func (s *runningSet) put(rt *runningTask) {
	if s.ids == nil {
		s.ids = s.idsBuf[:0]
		s.rts = s.rtsBuf[:0]
	}
	s.ids = append(s.ids, int32(rt.task.ID))
	s.rts = append(s.rts, rt)
}

func (s *runningSet) remove(id int) {
	for i, x := range s.ids {
		if int(x) == id {
			n := len(s.rts) - 1
			copy(s.ids[i:], s.ids[i+1:])
			copy(s.rts[i:], s.rts[i+1:])
			s.rts[n] = nil
			s.ids, s.rts = s.ids[:n], s.rts[:n]
			return
		}
	}
}

func (s *runningSet) len() int { return len(s.rts) }

// NewMaster creates a master on the given engine. link models the
// master's egress bandwidth; pass nil to make data movement free.
func NewMaster(eng *simclock.Engine, link *netsim.Link) *Master {
	m := &Master{
		eng:          eng,
		lane:         eng.NewLane("wq"),
		link:         link,
		byID:         make([]*Task, 1), // id 0 unused
		waiting:      newWaitQueue(),
		wids:         intern.NewTable(),
		fids:         intern.NewTable(),
		cats:         intern.NewTable(),
		retryPending: make(map[int]simclock.Timer),
		retryResume:  make(map[int]time.Time),
		admSet:       make(map[int]struct{}),
		lastPassRev:  ^uint64(0),
	}
	// One persistent closure for the coalesced dispatch event; a fresh
	// closure per completion shows up as allocator time at 100k scale.
	m.dispatchFn = func() {
		m.dispatchPending = false
		m.dispatchOnce()
	}
	return m
}

// SetPolicy selects the dispatch policy (default FirstFit).
func (m *Master) SetPolicy(p Policy) {
	m.policy = p
	m.rev++
	m.scheduleDispatch()
}

// Policy returns the current dispatch policy.
func (m *Master) Policy() Policy { return m.policy }

// SetEstimator installs the resource estimator consulted for tasks
// with unknown requirements. An estimator that also implements
// RevEstimator has its per-category predictions memoized between
// revisions, so a dispatch pass probes it once per category per
// observation batch instead of once per waiting task.
func (m *Master) SetEstimator(e Estimator) {
	m.estimator = e
	m.revEst, _ = e.(RevEstimator)
	m.estRes, m.estResOK, m.estResRev = nil, nil, nil
	m.rev++
	m.scheduleDispatch()
}

// task returns the record for an id, or nil for an unknown id.
func (m *Master) task(id int) *Task {
	if id <= 0 || id >= len(m.byID) {
		return nil
	}
	return m.byID[id]
}

// setTask registers a record under its dense id. Growth doubles
// explicitly: append's 1.25× policy for large slices would re-copy
// the million-pointer index four times over instead of twice.
func (m *Master) setTask(t *Task) {
	if t.ID >= len(m.byID) {
		n := t.ID + 1
		if n > cap(m.byID) {
			c := 2 * cap(m.byID)
			if c < 1024 {
				c = 1024
			}
			if c < n {
				c = n
			}
			b := make([]*Task, n, c)
			copy(b, m.byID)
			m.byID = b
		} else {
			m.byID = m.byID[:n]
		}
	}
	m.byID[t.ID] = t
}

// worker returns the connected worker with the given id, or nil.
func (m *Master) worker(id string) *simWorker {
	wid, ok := m.wids.Lookup(id)
	if !ok {
		return nil
	}
	return m.workersBy[wid]
}

// catIDFor returns the interned category for tasks whose placement
// consults the estimator, intern.None for declared-requirement tasks
// (their category never gates dispatch, so they skip the intern hash).
func (m *Master) catIDFor(t *Task) int32 {
	if !t.Resources.IsZero() {
		return intern.None
	}
	return m.cats.Intern(t.Category)
}

// OnComplete subscribes to task completions.
func (m *Master) OnComplete(fn func(Result)) { m.onComplete = append(m.onComplete, fn) }

// allocTask hands out Task storage from geometrically growing slabs
// (256 up to 16k records each), so a million-task run costs hundreds
// of allocations, not millions. Slabs are only ever appended to
// within capacity, so handed-out pointers stay valid; retention
// matches the byID index, which keeps every task for the master's
// lifetime anyway.
func (m *Master) allocTask() *Task {
	if len(m.taskSlab) == cap(m.taskSlab) {
		c := 2 * cap(m.taskSlab)
		if c < 256 {
			c = 256
		} else if c > 16384 {
			c = 16384
		}
		m.taskSlab = make([]Task, 0, c)
	}
	// Extend into already-zeroed slab capacity rather than appending a
	// composite literal: the latter re-writes ~300 zero bytes per task.
	n := len(m.taskSlab)
	m.taskSlab = m.taskSlab[:n+1]
	return &m.taskSlab[n]
}

// newRunningTask takes a dispatch record from the free list or makes
// one. The exec-complete closure is built once per record and reads
// the record's current fields, so it survives recycling.
func (m *Master) newRunningTask() *runningTask {
	if n := len(m.rtFree); n > 0 {
		rt := m.rtFree[n-1]
		m.rtFree[n-1] = nil
		m.rtFree = m.rtFree[:n-1]
		return rt
	}
	// Fresh records come out of a slab: at peak the dispatch storm has
	// hundreds of thousands of attempts in flight, and one slab alloc
	// per 4096 beats one per record.
	if len(m.rtSlab) == 0 {
		m.rtSlab = make([]runningTask, 4096)
	}
	rt := &m.rtSlab[0]
	m.rtSlab = m.rtSlab[1:]
	rt.execDone = func() {
		m.fstats.UsefulCoreSeconds += m.clearExecuting(rt)
		m.sendOutput(rt)
	}
	return rt
}

// recycleRunningTask returns a record to the free list, but only when
// every callback that captured it has been consumed (fetch waiters,
// input/output transfers); records from cancel/kill paths may still
// be referenced and are left to the garbage collector.
func (m *Master) recycleRunningTask(rt *runningTask) {
	if rt.pending != 0 || rt.inTr != nil || rt.outTr != nil {
		return
	}
	rt.task, rt.worker = nil, nil
	rt.execTmr = simclock.Timer{}
	rt.abortTmr = simclock.Timer{}
	m.rtFree = append(m.rtFree, rt)
}

// Submit enqueues a task and returns its ID. While the master is down
// (between Crash and Restore) submissions buffer and are replayed —
// with fresh IDs — when the master comes back; 0 is returned for
// them, like a scheduler deferring a task internally. With an
// admission policy set, submissions past the queue cap park in the
// admission buffer and are shed past its depth (see admission.go);
// check Task(id).State for the Rejected outcome.
func (m *Master) Submit(spec TaskSpec) int {
	if m.down {
		m.downSubmits = append(m.downSubmits, spec)
		return 0
	}
	m.nextID++
	t := m.allocTask()
	*t = Task{
		ID:          m.nextID,
		TaskSpec:    spec,
		State:       TaskWaiting,
		SubmittedAt: m.eng.Now(),
	}
	t.SharedInputs = append([]File(nil), spec.SharedInputs...)
	m.setTask(t)
	m.admit(t)
	return t.ID
}

// Task returns a copy of the task with the given ID.
func (m *Master) Task(id int) (Task, bool) {
	t := m.task(id)
	if t == nil {
		return Task{}, false
	}
	return *t, true
}

// AddWorker connects a worker with the given capacity.
func (m *Master) AddWorker(id string, capacity resources.Vector) error {
	if id == "" {
		return fmt.Errorf("wq: worker with empty id")
	}
	wid := m.wids.Intern(id)
	for int(wid) >= len(m.workersBy) {
		m.workersBy = append(m.workersBy, nil)
	}
	if m.workersBy[wid] != nil {
		return fmt.Errorf("wq: worker %q already connected", id)
	}
	if !capacity.AnyPositive() {
		return fmt.Errorf("wq: worker %q with no capacity", id)
	}
	// Workers come out of a slab: a 100k-worker roster costs dozens of
	// allocations instead of hundreds of thousands (the fetch maps are
	// built lazily at first shared-file use). Handed-out pointers stay
	// valid because slabs are only appended to within capacity; a
	// removed worker's record is unreachable garbage inside its slab,
	// which churn-heavy runs amortize at a few hundred bytes per
	// departure.
	if len(m.wkSlab) == cap(m.wkSlab) {
		c := 2 * cap(m.wkSlab)
		if c < 256 {
			c = 256
		} else if c > 4096 {
			c = 4096
		}
		m.wkSlab = make([]simWorker, 0, c)
	}
	m.wkSlab = append(m.wkSlab, simWorker{
		id:       id,
		wid:      wid,
		joinSeq:  m.nextJoinSeq,
		pool:     resources.MakePool(capacity),
		joinedAt: m.eng.Now(),
	})
	w := &m.wkSlab[len(m.wkSlab)-1]
	m.nextJoinSeq++
	m.workersBy[wid] = w
	m.workerCount++
	m.rosterAppend(w)
	m.totalCap = m.totalCap.Add(capacity)
	m.idleCount++
	m.markIdle(w)
	m.rev++
	m.scheduleDispatch()
	return nil
}

// DrainWorker stops dispatching to the worker and invokes onDrained
// once its running tasks finish (immediately if it is idle). The
// worker is removed from the roster when drained.
func (m *Master) DrainWorker(id string, onDrained func()) error {
	w := m.worker(id)
	if w == nil {
		return fmt.Errorf("wq: worker %q not connected", id)
	}
	if !w.draining {
		w.draining = true
		m.drainingCount++
		m.syncAvail(w)
		if w.running.len() == 0 {
			m.idleCount--
		}
	}
	w.onDrain = onDrained
	if w.running.len() == 0 {
		m.finishDrain(w)
	}
	return nil
}

// KillWorker abruptly disconnects a worker: its running tasks are
// returned to the waiting queue (preserving submission order, subject
// to the retry policy's backoff and quarantine) and all of its
// transfers are canceled. This is what a pod deletion does to the
// worker inside it.
func (m *Master) KillWorker(id string) error {
	w := m.worker(id)
	if w == nil {
		return fmt.Errorf("wq: worker %q not connected", id)
	}
	m.fstats.WorkerKills++
	// Process tasks in submission order so retry timers and quarantine
	// callbacks are scheduled deterministically.
	ids := make([]int, 0, w.running.len())
	for _, rt := range w.running.rts {
		ids = append(ids, rt.task.ID)
	}
	slices.Sort(ids)
	var requeued []int
	for _, tid := range ids {
		rt := w.running.get(tid)
		m.stopTask(rt)
		t := rt.task
		m.fstats.Requeues++
		if m.failAttempt(t) {
			requeued = append(requeued, t.ID)
		}
	}
	m.removeWorker(w)
	// Requeue at the front in submission order: these are the oldest
	// outstanding tasks.
	m.enqueueFront(requeued)
	m.rev++
	m.scheduleDispatch()
	return nil
}

// stopTask cancels a running task's transfers and execution timer,
// unwinding the executing-usage aggregate. Execution performed by the
// stopped attempt is accounted as lost work.
func (m *Master) stopTask(rt *runningTask) {
	if rt.inTr != nil {
		rt.inTr.Cancel()
	}
	if rt.outTr != nil {
		rt.outTr.Cancel()
	}
	rt.execTmr.Stop()
	rt.abortTmr.Stop()
	rt.aborted = true
	m.fstats.LostCoreSeconds += m.clearExecuting(rt)
}

// clearExecuting ends the attempt's executing phase and returns the
// core·seconds it consumed, for the caller to classify as useful
// (completion) or lost (kill/abort/cancel).
func (m *Master) clearExecuting(rt *runningTask) float64 {
	if !rt.executing {
		return 0
	}
	rt.executing = false
	m.busyUsage = m.busyUsage.Sub(rt.execUsage)
	elapsed := (m.eng.Elapsed() - rt.execStart).Seconds()
	return elapsed * float64(rt.execUsage.MilliCPU) / 1000
}

func (m *Master) removeWorker(w *simWorker) {
	// Cancel shared-file fetches still in flight for this worker —
	// they outlive the tasks that requested them (the file is cached
	// for future tasks), so both the kill and drain paths would
	// otherwise leave a dead worker consuming link capacity. Sorted
	// name order keeps link bookkeeping deterministic (fids are
	// assigned in first-fetch order, so they must be sorted by the
	// names they intern, not by id).
	fids := make([]int32, 0, len(w.fetches))
	for fid := range w.fetches {
		fids = append(fids, fid)
	}
	slices.SortFunc(fids, func(a, b int32) int { return cmp.Compare(m.fids.Str(a), m.fids.Str(b)) })
	for _, fid := range fids {
		w.fetches[fid].Cancel()
		delete(w.fetches, fid)
	}
	m.workersBy[w.wid] = nil
	m.workerCount--
	m.totalCap = m.totalCap.Sub(w.pool.Capacity())
	m.totalUsed = m.totalUsed.Sub(w.pool.Used())
	m.runningCount -= w.running.len()
	if w.draining {
		m.drainingCount--
	} else if w.running.len() == 0 {
		m.idleCount--
	}
	m.rosterRemove(w)
}

// connected reports whether w is still the live worker under its id
// (false once removed, or after a Crash reset the worker index).
func (m *Master) connected(w *simWorker) bool {
	return int(w.wid) < len(m.workersBy) && m.workersBy[w.wid] == w
}

func (m *Master) finishDrain(w *simWorker) {
	if !m.connected(w) {
		// Already removed: a completion callback may call DrainWorker
		// on the just-idled worker, finishing the drain before the
		// completion's own drain check runs. Repeating removeWorker
		// would double-subtract the capacity aggregates.
		return
	}
	m.removeWorker(w)
	if w.onDrain != nil {
		cb := w.onDrain
		w.onDrain = nil
		m.eng.After(0, "wq-drained-"+w.id, cb)
	}
	m.scheduleDispatch()
}

// Workers returns the connected worker IDs in join order.
func (m *Master) Workers() []string {
	out := make([]string, 0, m.workerCount)
	for _, w := range m.roster {
		if w != nil {
			out = append(out, w.id)
		}
	}
	return out
}

// WorkerCapacity returns a connected worker's capacity.
func (m *Master) WorkerCapacity(id string) (resources.Vector, bool) {
	w := m.worker(id)
	if w == nil {
		return resources.Zero, false
	}
	return w.pool.Capacity(), true
}

// WorkerUsage reports the instantaneous resource consumption of the
// worker's executing tasks (transfer phases consume no CPU), clamped
// to each task's allocation — the signal a metrics server scrapes
// from the worker pod.
func (m *Master) WorkerUsage(id string) resources.Vector {
	w := m.worker(id)
	if w == nil {
		return resources.Zero
	}
	var u resources.Vector
	for _, rt := range w.running.rts {
		if rt.executing {
			u = u.Add(rt.execUsage)
		}
	}
	return u
}

// BusyCPU returns the summed executing-task CPU consumption across
// every connected worker in millicores — the aggregate the samplers
// previously recomputed by walking the roster each tick.
func (m *Master) BusyCPU() int64 { return m.busyUsage.MilliCPU }

// WorkerBusy reports whether the worker has running tasks.
func (m *Master) WorkerBusy(id string) bool {
	w := m.worker(id)
	return w != nil && w.running.len() > 0
}

// --- dispatch ---

// scheduleDispatch coalesces dispatch passes into a single
// zero-delay event.
func (m *Master) scheduleDispatch() {
	if m.dispatchPending {
		return
	}
	m.dispatchPending = true
	m.eng.After(0, "wq-dispatch", m.dispatchFn)
}

// RevEstimator is an Estimator whose predictions only change when its
// revision does. The master memoizes per-category estimates against
// the revision, so steady-state dispatch passes skip the estimator's
// locking and aggregation entirely (the monitor bumps its revision on
// every observation batch).
type RevEstimator interface {
	Estimator
	// EstimateRev returns the current estimate revision. Any change
	// that could alter an estimate must change the revision.
	EstimateRev() uint64
}

// estimateResourcesCat probes the estimator for an interned category,
// memoized per estimator revision when the estimator declares one.
func (m *Master) estimateResourcesCat(catID int32) (resources.Vector, bool) {
	if m.estimator == nil || catID < 0 {
		return resources.Zero, false
	}
	if m.revEst == nil {
		return m.estimator.EstimateResources(m.cats.Str(catID))
	}
	rev := m.revEst.EstimateRev() + 1 // 0 marks never-probed slots
	for int(catID) >= len(m.estResRev) {
		m.estRes = append(m.estRes, resources.Zero)
		m.estResOK = append(m.estResOK, false)
		m.estResRev = append(m.estResRev, 0)
	}
	if m.estResRev[catID] == rev {
		return m.estRes[catID], m.estResOK[catID]
	}
	v, ok := m.revEst.EstimateResources(m.cats.Str(catID))
	m.estRes[catID], m.estResOK[catID], m.estResRev[catID] = v, ok, rev
	return v, ok
}

// resolveResources determines the allocation for a task: declared
// size, an estimator prediction for its category, or unknown. catID
// is the task's interned category (intern.None when declared).
func (m *Master) resolveResources(t *Task, catID int32) (resources.Vector, bool) {
	if !t.Resources.IsZero() {
		return t.Resources, true
	}
	if v, ok := m.estimateResourcesCat(catID); ok && !v.IsZero() {
		return v, true
	}
	return resources.Zero, false
}

// dispatchOnce walks the waiting queue — highest priority first,
// submission order within a priority — and places every task that
// fits somewhere (later tasks may backfill around a blocked
// head-of-line task, as Work Queue does).
//
// The pass is indexed three ways: it returns immediately when nothing
// affecting placement changed since the last pass, it returns when
// every waiting task declares requirements and even the queue's
// smallest cannot fit the largest free worker, and each task is
// rejected in O(1) against the max-free bound before any roster scan.
//
// After the pass, buffered submissions are admitted into whatever
// room the placements opened under the admission cap (never mid-scan:
// the queue must not grow while Scan walks it).
func (m *Master) dispatchOnce() {
	m.dispatchPass()
	m.drainAdmission()
}

func (m *Master) dispatchPass() {
	if m.waiting.Len() == 0 || m.workerCount == 0 {
		return
	}
	if m.rev == m.lastPassRev {
		// A pass already ran against this exact queue/capacity/config
		// state and placed everything placeable.
		return
	}
	m.lastPassRev = m.rev
	// maxFree bounds every eligible worker's available capacity from
	// above for the whole pass: placements only shrink frees. A failed
	// full roster scan refreshes it to the exact current value.
	maxFree := m.maxFreeCapacity()
	if m.queueStalled(maxFree) {
		return
	}
	m.waiting.Scan(func(id int, catID int32, declared resources.Vector) (bool, bool) {
		if !declared.IsZero() {
			// Declared requirement: gate on the inline entry without
			// touching the task record at all.
			if !declared.Fits(maxFree) {
				return false, false
			}
			placed, scanned, full := m.placeKnown(m.byID[id], declared)
			if !placed && full {
				maxFree = scanned
				// With the refreshed exact bound, stop the pass once
				// nothing left in the queue can be placed.
				if m.queueStalled(maxFree) {
					return false, true
				}
			}
			return placed, false
		}
		t := m.byID[id]
		res, known := m.resolveResources(t, catID)
		if !known {
			return m.placeExclusive(t), false
		}
		if !res.Fits(maxFree) {
			return false, false
		}
		placed, scanned, full := m.placeKnown(t, res)
		if !placed && full {
			maxFree = scanned
			if m.queueStalled(maxFree) {
				return false, true
			}
		}
		return placed, false
	})
}

// queueStalled reports that no waiting task can be placed on any
// worker when maxFree bounds every worker's free capacity from above.
// Declared requirements are bounded below by the queue's minReq;
// undeclared tasks all place through their category's estimate, so
// each waiting category is checked once. A category with no estimate
// yet could still take the exclusive-placement path, which needs an
// idle worker. Estimates cannot change mid-pass (the pass is a single
// event), so the answer stays valid for the rest of the pass.
func (m *Master) queueStalled(maxFree resources.Vector) bool {
	if m.waiting.MinFits(maxFree) {
		return false
	}
	if m.waiting.unknownRes == 0 {
		return true
	}
	stalled := true
	m.waiting.ForEachUnknownCategory(func(catID int32, _ int) {
		if !stalled {
			return
		}
		est, ok := m.estimateResourcesCat(catID)
		if ok && !est.IsZero() {
			if est.Fits(maxFree) {
				stalled = false
			}
			return
		}
		if m.idleCount > 0 {
			stalled = false
		}
	})
	return stalled
}

// maxFreeCapacity returns the component-wise maximum free capacity
// over non-draining workers: the avail-index root in O(1), or the
// retained roster scan in naive mode.
func (m *Master) maxFreeCapacity() resources.Vector {
	if !m.naivePlace {
		return m.avail.maxFree()
	}
	var free resources.Vector
	for _, wid := range m.naiveOrder {
		w := m.worker(wid)
		if !w.draining {
			free = free.Max(w.pool.Available())
		}
	}
	return free
}

// Cancel withdraws a task. A waiting task leaves the queue; a running
// task is stopped on its worker and its allocation freed. Canceling a
// finished or already-canceled task is an error. No completion
// callback fires for canceled tasks.
func (m *Master) Cancel(id int) error {
	t := m.task(id)
	if t == nil {
		return fmt.Errorf("wq: task %d not found", id)
	}
	switch t.State {
	case TaskWaiting:
		if m.cancelBuffered(id) {
			// Was parked in the admission buffer; never entered the queue.
		} else if tmr, pending := m.retryPending[id]; pending {
			tmr.Stop()
			delete(m.retryPending, id)
			delete(m.retryResume, id)
		} else {
			m.waiting.Remove(id, t.Resources, m.catIDFor(t))
			m.drainAdmission() // the cancellation freed a slot under the cap
		}
		m.rev++
	case TaskRunning:
		w := m.worker(t.WorkerID)
		if w == nil {
			return fmt.Errorf("wq: task %d running on unknown worker %q", id, t.WorkerID)
		}
		m.detachRunning(w.running.get(id))
		if w.draining && w.running.len() == 0 {
			defer m.finishDrain(w)
		}
		m.scheduleDispatch()
	default:
		return fmt.Errorf("wq: task %d is %v, cannot cancel", id, t.State)
	}
	t.State = TaskCanceled
	t.FinishedAt = m.eng.Now()
	return nil
}

// placeKnown scans the roster for a worker fitting res under the
// current policy. When the scan visited the whole roster without
// placing (fullScan && !placed), scannedMax carries the exact
// component-wise max free capacity observed, letting the caller
// tighten its pass-wide bound.
func (m *Master) placeKnown(t *Task, res resources.Vector) (placed bool, scannedMax resources.Vector, fullScan bool) {
	if m.policy == FirstFit && !m.naivePlace {
		// Indexed path: leftmost-fit descent through the avail tree.
		// On a miss the root is the exact max free, so the caller's
		// bound refresh costs nothing extra.
		slot := m.avail.findFirst(res)
		if slot < 0 {
			return false, m.avail.maxFree(), true
		}
		m.startTask(t, m.roster[slot], res, false)
		return true, resources.Zero, false
	}
	var chosen *simWorker
	var chosenFree int64
	// consider scores one worker under the current policy; true means
	// a FirstFit placement ended the scan.
	consider := func(w *simWorker) bool {
		if w.draining {
			return false
		}
		avail := w.pool.Available()
		scannedMax = scannedMax.Max(avail)
		if !res.Fits(avail) {
			return false
		}
		if m.policy == FirstFit {
			m.startTask(t, w, res, false)
			return true
		}
		// Score by free CPU after placement (the binding dimension
		// for HTC tasks); memory breaks ties implicitly via order.
		free := avail.Sub(res).MilliCPU
		better := chosen == nil ||
			(m.policy == BestFit && free < chosenFree) ||
			(m.policy == WorstFit && free > chosenFree)
		if better {
			chosen, chosenFree = w, free
		}
		return false
	}
	if m.naivePlace {
		// The retained scan, verbatim cost model included: join-order
		// id list with a lookup per worker.
		for _, wid := range m.naiveOrder {
			if consider(m.worker(wid)) {
				return true, scannedMax, false
			}
		}
	} else {
		for _, w := range m.roster {
			if w != nil && consider(w) {
				return true, scannedMax, false
			}
		}
	}
	if chosen == nil {
		return false, scannedMax, true
	}
	m.startTask(t, chosen, res, false)
	return true, scannedMax, true
}

// placeExclusive places an unknown-requirement task alone on the
// first idle worker in join order, via the idle free list.
func (m *Master) placeExclusive(t *Task) bool {
	w := m.takeIdle()
	if w == nil {
		return false
	}
	m.startTask(t, w, w.pool.Capacity(), true)
	return true
}

func (m *Master) startTask(t *Task, w *simWorker, alloc resources.Vector, exclusive bool) {
	if err := w.pool.Acquire(alloc); err != nil {
		panic(fmt.Sprintf("wq: dispatch accounting bug: %v", err))
	}
	m.syncAvail(w)
	if w.running.len() == 0 && !w.draining {
		m.idleCount--
	}
	m.runningCount++
	m.totalUsed = m.totalUsed.Add(alloc)
	t.State = TaskRunning
	t.WorkerID = w.id
	t.StartedAt = m.eng.Now()
	t.Attempts++
	t.Gen++
	t.Allocated = alloc
	t.Exclusive = exclusive
	rt := m.newRunningTask()
	rt.task, rt.worker = t, w
	rt.aborted = false
	w.running.put(rt)
	m.armFastAbort(rt)

	// Input staging: shared files are fetched once per worker and
	// shared by all its tasks; the private input belongs to the task.
	rt.pending = 1 // barrier released after all fetches are set up
	for _, f := range t.SharedInputs {
		fid := m.fids.Intern(f.Name)
		if w.hasFile(fid) {
			continue
		}
		rt.pending++
		if rt.fetchFn == nil {
			// Bound lazily, like inFn/outFn: only staging-heavy
			// workloads pay for it, once per record.
			rt.fetchFn = func() { m.fetchDone(rt) }
		}
		m.ensureFile(w, fid, f.SizeMB, rt.fetchFn)
	}
	m.flushFreeFetches()
	if t.InputMB > 0 && m.link != nil {
		rt.pending++
		if rt.inFn == nil {
			// Bound lazily: workloads without per-task transfers never
			// pay for the closure; transfer-heavy ones pay once per
			// record, then recycle it with the record.
			rt.inFn = func() {
				rt.inTr = nil
				m.fetchDone(rt)
			}
		}
		rt.inTr = m.link.Start(t.InputMB, rt.inFn)
	}
	m.fetchDone(rt) // release the setup barrier
}

// flushFreeFetches schedules the accumulated free-transfer arrivals
// as one zero-delay batch on the master's lane — one heap settle per
// staging wave instead of one event per file.
func (m *Master) flushFreeFetches() {
	if len(m.freeFetch) == 0 {
		return
	}
	m.eng.AfterBatch(0, m.lane, "wq-fetch-free", m.freeFetch)
	for i := range m.freeFetch {
		m.freeFetch[i] = nil
	}
	m.freeFetch = m.freeFetch[:0]
}

// ensureFile fetches a shared file (by interned fid) onto the worker
// exactly once; callbacks queue while a fetch is in flight.
func (m *Master) ensureFile(w *simWorker, fid int32, sizeMB float64, cb func()) {
	if w.hasFile(fid) {
		cb()
		return
	}
	if _, inflight := w.fetching[fid]; inflight {
		w.fetching[fid] = append(w.fetching[fid], cb)
		return
	}
	if w.fetching == nil {
		w.fetching = make(map[int32][]func())
	}
	w.fetching[fid] = []func(){cb}
	if m.link == nil || sizeMB <= 0 {
		// Free transfers arrive instantly; the arrivals for one task's
		// staging accumulate and go out as a single batch event.
		m.freeFetch = append(m.freeFetch, func() { m.fileArrived(w, fid) })
		return
	}
	if w.fetches == nil {
		w.fetches = make(map[int32]*netsim.Transfer)
	}
	w.fetches[fid] = m.link.Start(sizeMB, func() {
		delete(w.fetches, fid)
		m.fileArrived(w, fid)
	})
}

func (m *Master) fileArrived(w *simWorker, fid int32) {
	if !m.connected(w) {
		return
	}
	w.setFile(fid)
	cbs := w.fetching[fid]
	delete(w.fetching, fid)
	for _, cb := range cbs {
		cb()
	}
}

func (m *Master) fetchDone(rt *runningTask) {
	if rt.aborted {
		// The attempt was stopped (kill, fast-abort, cancel) while a
		// shared-file fetch it was waiting on stayed in flight; the
		// late callback must not start execution.
		return
	}
	rt.pending--
	if rt.pending > 0 {
		return
	}
	// All inputs are on the worker: execute.
	t := rt.task
	rt.executing = true
	rt.execStart = m.eng.Elapsed()
	rt.execUsage = t.Profile.Usage().Min(t.Allocated)
	m.busyUsage = m.busyUsage.Add(rt.execUsage)
	rt.execTmr = m.eng.After(t.Profile.ExecDuration, "wq-exec", rt.execDone)
}

func (m *Master) sendOutput(rt *runningTask) {
	t := rt.task
	if t.OutputMB > 0 && m.link != nil {
		if rt.outFn == nil {
			rt.outFn = func() {
				rt.outTr = nil
				m.completeTask(rt)
			}
		}
		rt.outTr = m.link.Start(t.OutputMB, rt.outFn)
		return
	}
	m.completeTask(rt)
}

func (m *Master) completeTask(rt *runningTask) {
	t, w := rt.task, rt.worker
	rt.abortTmr.Stop()
	w.running.remove(t.ID)
	w.pool.Release(t.Allocated)
	m.syncAvail(w)
	m.runningCount--
	m.totalUsed = m.totalUsed.Sub(t.Allocated)
	if w.running.len() == 0 && !w.draining {
		m.idleCount++
		m.markIdle(w)
	}
	m.recycleRunningTask(rt)
	t.State = TaskComplete
	t.FinishedAt = m.eng.Now()
	t.ExecWall = t.FinishedAt.Sub(t.StartedAt)
	t.Measured = t.Profile.Usage()
	m.completeCount++
	m.rev++
	if len(m.onComplete) > 0 {
		// Built only when someone listens: the 280-byte record copy per
		// completion is pure allocator traffic in headless storms.
		res := Result{Task: *t}
		for _, fn := range m.onComplete {
			fn(res)
		}
	}
	if w.draining && w.running.len() == 0 {
		m.finishDrain(w)
		return
	}
	m.scheduleDispatch()
}

// --- introspection ---

// Stats is a snapshot of the master's queue and worker pool.
type Stats struct {
	// Waiting counts queued tasks, failed tasks sitting out a retry
	// backoff, and buffered submissions (all still owed execution).
	Waiting     int
	Running     int
	Complete    int
	Quarantined int
	// Buffered counts submissions parked in the admission buffer;
	// Shed counts submissions rejected at the admission hard cap.
	Buffered int
	Shed     int

	Workers         int
	IdleWorkers     int
	DrainingWorkers int

	// Capacity is the summed capacity of connected workers; InUse is
	// the summed allocations of running tasks.
	Capacity resources.Vector
	InUse    resources.Vector
}

// Stats returns the current snapshot in O(1) from the master's
// incremental aggregates.
func (m *Master) Stats() Stats {
	return Stats{
		Waiting:         m.waiting.Len() + len(m.retryPending) + len(m.rescuable) + len(m.admQueue),
		Running:         m.runningCount,
		Complete:        m.completeCount,
		Quarantined:     m.fstats.Quarantined,
		Buffered:        len(m.admQueue),
		Shed:            m.ostats.Shed,
		Workers:         m.workerCount,
		IdleWorkers:     m.idleCount,
		DrainingWorkers: m.drainingCount,
		Capacity:        m.totalCap,
		InUse:           m.totalUsed,
	}
}

// ForEachWaiting visits every waiting task in dispatch order
// (priority descending, submission order within a priority) without
// allocating. The callback must treat the task as read-only and must
// not call back into the master.
func (m *Master) ForEachWaiting(fn func(t *Task)) {
	m.waiting.ForEach(func(id int) { fn(m.byID[id]) })
}

// ForEachRunning visits every dispatched task without allocating,
// grouped by worker in join order; the order within a worker is
// unspecified. The callback must treat the task as read-only and must
// not call back into the master.
func (m *Master) ForEachRunning(fn func(t *Task)) {
	for _, w := range m.roster {
		if w == nil {
			continue
		}
		for _, rt := range w.running.rts {
			fn(rt.task)
		}
	}
}

// WaitingTasks returns copies of the queued tasks in queue order.
func (m *Master) WaitingTasks() []Task {
	ids := m.waiting.QueueOrder()
	out := make([]Task, 0, len(ids))
	for _, id := range ids {
		out = append(out, *m.byID[id])
	}
	return out
}

// RunningTasks returns copies of all dispatched tasks, ordered by ID.
func (m *Master) RunningTasks() []Task {
	var out []Task
	m.ForEachRunning(func(t *Task) { out = append(out, *t) })
	slices.SortFunc(out, func(a, b Task) int { return cmp.Compare(a.ID, b.ID) })
	return out
}

// Rev returns the master's mutation revision: it changes whenever the
// queue, the worker roster, the policy or the estimator changes in a
// way that could alter a dispatch or planning pass. External planners
// (the multi-tenant arbiter) compare revisions across cycles to skip
// re-planning masters whose state is provably unchanged. Draining a
// worker does not bump the revision — the initiator of a drain must
// account for it separately.
func (m *Master) Rev() uint64 { return m.rev }

// ForEachWorker visits connected workers in join order with their
// capacity and draining flag, without allocating. The callback must
// not call back into the master.
func (m *Master) ForEachWorker(fn func(id string, capacity resources.Vector, draining bool)) {
	for _, w := range m.roster {
		if w == nil {
			continue
		}
		fn(w.id, w.pool.Capacity(), w.draining)
	}
}

// CompletedCount returns the number of completed tasks.
func (m *Master) CompletedCount() int { return m.completeCount }

// WorkerDetail describes one connected worker.
type WorkerDetail struct {
	ID          string
	Capacity    resources.Vector
	InUse       resources.Vector
	Running     int
	CachedFiles int
	Draining    bool
	JoinedAt    time.Time
}

// WorkerDetails returns per-worker state in join order — the data a
// `work_queue_status`-style CLI prints.
func (m *Master) WorkerDetails() []WorkerDetail {
	out := make([]WorkerDetail, 0, m.workerCount)
	for _, w := range m.roster {
		if w == nil {
			continue
		}
		out = append(out, WorkerDetail{
			ID:          w.id,
			Capacity:    w.pool.Capacity(),
			InUse:       w.pool.Used(),
			Running:     w.running.len(),
			CachedFiles: w.cached,
			Draining:    w.draining,
			JoinedAt:    w.joinedAt,
		})
	}
	return out
}
