package wq

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"time"

	"hta/internal/metrics"
	"hta/internal/netsim"
	"hta/internal/resources"
	"hta/internal/simclock"
)

// Policy selects which fitting worker receives a task.
type Policy int

// Dispatch policies.
const (
	// FirstFit takes the first worker (in join order) with room —
	// Work Queue's default; cheap and keeps later workers drainable.
	FirstFit Policy = iota
	// BestFit takes the worker whose free capacity after placement
	// is smallest, consolidating load onto few workers.
	BestFit
	// WorstFit takes the worker with the most free capacity,
	// spreading load evenly.
	WorstFit
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Master is the simulated Work Queue master. It owns the task queue,
// the set of connected workers, and the dispatch policy. All methods
// must be called from the simulation goroutine.
//
// The dispatch hot path is indexed so the master scales in event
// rate: the waiting queue is bucketed by priority (no per-pass sort),
// cancellation removes through a position index, exclusive placement
// pulls from an idle-worker free list instead of scanning the roster,
// and a pass exits early when nothing affecting placement changed or
// when the largest free worker cannot fit the smallest waiting task.
type Master struct {
	eng    *simclock.Engine
	lane   simclock.Lane // engine lane for the master's batch events
	link   *netsim.Link  // master egress; nil = transfers are free
	policy Policy

	nextID   int
	tasks    map[int]*Task
	taskSlab []Task // slab-allocated Task storage; see allocTask
	waiting  *waitQueue
	rtFree   []*runningTask // recycled runningTask records

	workers     map[string]*simWorker
	nextJoinSeq uint64
	idle        idleHeap
	freeFetch   []func() // free-transfer fetch arrivals batched per dispatch

	// roster holds workers by slot in join order; departures leave nil
	// tombstones (compacted once they dominate) so slots stay stable
	// for the avail index. avail is the segment tree FirstFit descends
	// instead of scanning; naivePlace retains the linear scan as the
	// placement oracle.
	roster     []*simWorker
	tombs      int
	avail      availIndex
	naivePlace bool
	naiveOrder []string // join-order id list for the retained naive scan

	estimator  Estimator
	onComplete []func(Result)
	onFailed   []func(Task)

	retry        RetryPolicy
	retryPending map[int]simclock.Timer // task ID -> backoff timer
	retryResume  map[int]time.Time      // task ID -> backoff deadline (for Snapshot)
	fstats       FailureStats

	// Bounded admission (see admission.go): submissions past MaxWaiting
	// park in admQueue (FIFO of task IDs) and are shed past its cap.
	admission     AdmissionPolicy
	admQueue      []int
	admSet        map[int]struct{}
	onRejected    []func(Task)
	ostats        metrics.OverloadCounters
	inOverload    bool
	overloadSince time.Time

	// Crash/restore state (see snapshot.go): epoch counts restarts,
	// rescuable holds running tasks awaiting their worker's reattach,
	// down marks the window between Crash and Restore.
	epoch       int
	rescuable   map[int]struct{}
	rescueTmr   simclock.Timer
	down        bool
	downSince   time.Time
	downSubmits []TaskSpec
	rec         metrics.RecoveryCounters

	dispatchPending bool
	dispatchFn      func() // persistent coalesced-dispatch closure
	completeCount   int

	// Incremental aggregates, kept in lockstep with the queue and the
	// worker pools so Stats, BusyCPU and the samplers are O(1).
	runningCount  int
	idleCount     int // idle, non-draining workers
	drainingCount int
	totalCap      resources.Vector // summed capacity of connected workers
	totalUsed     resources.Vector // summed allocations on connected workers
	busyUsage     resources.Vector // summed clamped usage of executing tasks

	// rev is bumped by every mutation that could let a dispatch pass
	// place a task (queue growth, capacity release, policy/estimator
	// change). A pass records the rev it ran at; a pass at an
	// unchanged rev is a guaranteed no-op and returns immediately.
	rev         uint64
	lastPassRev uint64
}

// simWorker is the master-side state of a simulated worker.
type simWorker struct {
	id       string
	joinSeq  uint64
	slot     int // roster index; -1 once removed
	pool     *resources.Pool
	cache    map[string]bool     // shared files present
	fetching map[string][]func() // shared files in flight -> waiters
	fetches  map[string]*netsim.Transfer
	running  runningSet
	draining bool
	onDrain  func()
	joinedAt time.Time
}

type runningTask struct {
	task      *Task
	worker    *simWorker
	pending   int // outstanding input fetches
	inTr      *netsim.Transfer
	outTr     *netsim.Transfer
	execTmr   simclock.Timer
	abortTmr  simclock.Timer
	execDone  func() // persistent exec-complete closure (see newRunningTask)
	abortFn   func() // persistent fast-abort closure
	executing bool
	aborted   bool             // attempt stopped; late fetch callbacks must not run it
	execUsage resources.Vector // clamped usage while executing
	execStart time.Time        // when execution (not staging) began
}

// runningSet holds a worker's in-flight attempts in a small slice. A
// worker runs at most a handful of tasks at once (capacity-bound), so
// linear scans beat a map's hashing and delete churn in the dispatch
// hot path. Attempts are removed from the set before their record is
// recycled, so every resident entry has a valid task pointer.
type runningSet struct{ rts []*runningTask }

func (s *runningSet) get(id int) *runningTask {
	for _, rt := range s.rts {
		if rt.task.ID == id {
			return rt
		}
	}
	return nil
}

func (s *runningSet) put(rt *runningTask) { s.rts = append(s.rts, rt) }

func (s *runningSet) remove(id int) {
	for i, rt := range s.rts {
		if rt.task.ID == id {
			n := len(s.rts) - 1
			copy(s.rts[i:], s.rts[i+1:])
			s.rts[n] = nil
			s.rts = s.rts[:n]
			return
		}
	}
}

func (s *runningSet) len() int { return len(s.rts) }

// NewMaster creates a master on the given engine. link models the
// master's egress bandwidth; pass nil to make data movement free.
func NewMaster(eng *simclock.Engine, link *netsim.Link) *Master {
	m := &Master{
		eng:          eng,
		lane:         eng.NewLane("wq"),
		link:         link,
		tasks:        make(map[int]*Task),
		waiting:      newWaitQueue(),
		workers:      make(map[string]*simWorker),
		retryPending: make(map[int]simclock.Timer),
		retryResume:  make(map[int]time.Time),
		admSet:       make(map[int]struct{}),
		lastPassRev:  ^uint64(0),
	}
	// One persistent closure for the coalesced dispatch event; a fresh
	// closure per completion shows up as allocator time at 100k scale.
	m.dispatchFn = func() {
		m.dispatchPending = false
		m.dispatchOnce()
	}
	return m
}

// SetPolicy selects the dispatch policy (default FirstFit).
func (m *Master) SetPolicy(p Policy) {
	m.policy = p
	m.rev++
	m.scheduleDispatch()
}

// Policy returns the current dispatch policy.
func (m *Master) Policy() Policy { return m.policy }

// SetEstimator installs the resource estimator consulted for tasks
// with unknown requirements.
func (m *Master) SetEstimator(e Estimator) {
	m.estimator = e
	m.rev++
	m.scheduleDispatch()
}

// OnComplete subscribes to task completions.
func (m *Master) OnComplete(fn func(Result)) { m.onComplete = append(m.onComplete, fn) }

// allocTask hands out Task storage from fixed-capacity slabs, so a
// million-task run costs thousands of allocations, not millions.
// Slabs are only ever appended to within capacity, so handed-out
// pointers stay valid; retention matches the tasks map, which keeps
// every task for the master's lifetime anyway.
func (m *Master) allocTask() *Task {
	if len(m.taskSlab) == cap(m.taskSlab) {
		m.taskSlab = make([]Task, 0, 256)
	}
	m.taskSlab = append(m.taskSlab, Task{})
	return &m.taskSlab[len(m.taskSlab)-1]
}

// newRunningTask takes a dispatch record from the free list or makes
// one. The exec-complete closure is built once per record and reads
// the record's current fields, so it survives recycling.
func (m *Master) newRunningTask() *runningTask {
	if n := len(m.rtFree); n > 0 {
		rt := m.rtFree[n-1]
		m.rtFree[n-1] = nil
		m.rtFree = m.rtFree[:n-1]
		return rt
	}
	rt := &runningTask{}
	rt.execDone = func() {
		m.fstats.UsefulCoreSeconds += m.clearExecuting(rt)
		m.sendOutput(rt)
	}
	rt.abortFn = func() { m.fastAbort(rt) }
	return rt
}

// recycleRunningTask returns a record to the free list, but only when
// every callback that captured it has been consumed (fetch waiters,
// input/output transfers); records from cancel/kill paths may still
// be referenced and are left to the garbage collector.
func (m *Master) recycleRunningTask(rt *runningTask) {
	if rt.pending != 0 || rt.inTr != nil || rt.outTr != nil {
		return
	}
	rt.task, rt.worker = nil, nil
	rt.execTmr = simclock.Timer{}
	rt.abortTmr = simclock.Timer{}
	m.rtFree = append(m.rtFree, rt)
}

// Submit enqueues a task and returns its ID. While the master is down
// (between Crash and Restore) submissions buffer and are replayed —
// with fresh IDs — when the master comes back; 0 is returned for
// them, like a scheduler deferring a task internally. With an
// admission policy set, submissions past the queue cap park in the
// admission buffer and are shed past its depth (see admission.go);
// check Task(id).State for the Rejected outcome.
func (m *Master) Submit(spec TaskSpec) int {
	if m.down {
		m.downSubmits = append(m.downSubmits, spec)
		return 0
	}
	m.nextID++
	t := m.allocTask()
	*t = Task{
		ID:          m.nextID,
		TaskSpec:    spec,
		State:       TaskWaiting,
		SubmittedAt: m.eng.Now(),
	}
	t.SharedInputs = append([]File(nil), spec.SharedInputs...)
	m.tasks[t.ID] = t
	m.admit(t)
	return t.ID
}

// Task returns a copy of the task with the given ID.
func (m *Master) Task(id int) (Task, bool) {
	t, ok := m.tasks[id]
	if !ok {
		return Task{}, false
	}
	return *t, true
}

// AddWorker connects a worker with the given capacity.
func (m *Master) AddWorker(id string, capacity resources.Vector) error {
	if id == "" {
		return fmt.Errorf("wq: worker with empty id")
	}
	if _, dup := m.workers[id]; dup {
		return fmt.Errorf("wq: worker %q already connected", id)
	}
	if !capacity.AnyPositive() {
		return fmt.Errorf("wq: worker %q with no capacity", id)
	}
	w := &simWorker{
		id:       id,
		joinSeq:  m.nextJoinSeq,
		pool:     resources.NewPool(capacity),
		cache:    make(map[string]bool),
		fetching: make(map[string][]func()),
		fetches:  make(map[string]*netsim.Transfer),
		joinedAt: m.eng.Now(),
	}
	m.nextJoinSeq++
	m.workers[id] = w
	m.rosterAppend(w)
	m.totalCap = m.totalCap.Add(capacity)
	m.idleCount++
	m.markIdle(w)
	m.rev++
	m.scheduleDispatch()
	return nil
}

// DrainWorker stops dispatching to the worker and invokes onDrained
// once its running tasks finish (immediately if it is idle). The
// worker is removed from the roster when drained.
func (m *Master) DrainWorker(id string, onDrained func()) error {
	w, ok := m.workers[id]
	if !ok {
		return fmt.Errorf("wq: worker %q not connected", id)
	}
	if !w.draining {
		w.draining = true
		m.drainingCount++
		m.syncAvail(w)
		if w.running.len() == 0 {
			m.idleCount--
		}
	}
	w.onDrain = onDrained
	if w.running.len() == 0 {
		m.finishDrain(w)
	}
	return nil
}

// KillWorker abruptly disconnects a worker: its running tasks are
// returned to the waiting queue (preserving submission order, subject
// to the retry policy's backoff and quarantine) and all of its
// transfers are canceled. This is what a pod deletion does to the
// worker inside it.
func (m *Master) KillWorker(id string) error {
	w, ok := m.workers[id]
	if !ok {
		return fmt.Errorf("wq: worker %q not connected", id)
	}
	m.fstats.WorkerKills++
	// Process tasks in submission order so retry timers and quarantine
	// callbacks are scheduled deterministically.
	ids := make([]int, 0, w.running.len())
	for _, rt := range w.running.rts {
		ids = append(ids, rt.task.ID)
	}
	sort.Ints(ids)
	var requeued []int
	for _, tid := range ids {
		rt := w.running.get(tid)
		m.stopTask(rt)
		t := rt.task
		m.fstats.Requeues++
		if m.failAttempt(t) {
			requeued = append(requeued, t.ID)
		}
	}
	m.removeWorker(w)
	// Requeue at the front in submission order: these are the oldest
	// outstanding tasks.
	m.enqueueFront(requeued)
	m.rev++
	m.scheduleDispatch()
	return nil
}

// stopTask cancels a running task's transfers and execution timer,
// unwinding the executing-usage aggregate. Execution performed by the
// stopped attempt is accounted as lost work.
func (m *Master) stopTask(rt *runningTask) {
	if rt.inTr != nil {
		rt.inTr.Cancel()
	}
	if rt.outTr != nil {
		rt.outTr.Cancel()
	}
	rt.execTmr.Stop()
	rt.abortTmr.Stop()
	rt.aborted = true
	m.fstats.LostCoreSeconds += m.clearExecuting(rt)
}

// clearExecuting ends the attempt's executing phase and returns the
// core·seconds it consumed, for the caller to classify as useful
// (completion) or lost (kill/abort/cancel).
func (m *Master) clearExecuting(rt *runningTask) float64 {
	if !rt.executing {
		return 0
	}
	rt.executing = false
	m.busyUsage = m.busyUsage.Sub(rt.execUsage)
	elapsed := m.eng.Now().Sub(rt.execStart).Seconds()
	return elapsed * float64(rt.execUsage.MilliCPU) / 1000
}

func (m *Master) removeWorker(w *simWorker) {
	// Cancel shared-file fetches still in flight for this worker —
	// they outlive the tasks that requested them (the file is cached
	// for future tasks), so both the kill and drain paths would
	// otherwise leave a dead worker consuming link capacity. Sorted
	// name order keeps link bookkeeping deterministic.
	names := make([]string, 0, len(w.fetches))
	for name := range w.fetches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w.fetches[name].Cancel()
		delete(w.fetches, name)
	}
	delete(m.workers, w.id)
	m.totalCap = m.totalCap.Sub(w.pool.Capacity())
	m.totalUsed = m.totalUsed.Sub(w.pool.Used())
	m.runningCount -= w.running.len()
	if w.draining {
		m.drainingCount--
	} else if w.running.len() == 0 {
		m.idleCount--
	}
	m.rosterRemove(w)
}

func (m *Master) finishDrain(w *simWorker) {
	if m.workers[w.id] != w {
		// Already removed: a completion callback may call DrainWorker
		// on the just-idled worker, finishing the drain before the
		// completion's own drain check runs. Repeating removeWorker
		// would double-subtract the capacity aggregates.
		return
	}
	m.removeWorker(w)
	if w.onDrain != nil {
		cb := w.onDrain
		w.onDrain = nil
		m.eng.After(0, "wq-drained-"+w.id, cb)
	}
	m.scheduleDispatch()
}

// Workers returns the connected worker IDs in join order.
func (m *Master) Workers() []string {
	out := make([]string, 0, len(m.workers))
	for _, w := range m.roster {
		if w != nil {
			out = append(out, w.id)
		}
	}
	return out
}

// WorkerCapacity returns a connected worker's capacity.
func (m *Master) WorkerCapacity(id string) (resources.Vector, bool) {
	w, ok := m.workers[id]
	if !ok {
		return resources.Zero, false
	}
	return w.pool.Capacity(), true
}

// WorkerUsage reports the instantaneous resource consumption of the
// worker's executing tasks (transfer phases consume no CPU), clamped
// to each task's allocation — the signal a metrics server scrapes
// from the worker pod.
func (m *Master) WorkerUsage(id string) resources.Vector {
	w, ok := m.workers[id]
	if !ok {
		return resources.Zero
	}
	var u resources.Vector
	for _, rt := range w.running.rts {
		if rt.executing {
			u = u.Add(rt.execUsage)
		}
	}
	return u
}

// BusyCPU returns the summed executing-task CPU consumption across
// every connected worker in millicores — the aggregate the samplers
// previously recomputed by walking the roster each tick.
func (m *Master) BusyCPU() int64 { return m.busyUsage.MilliCPU }

// WorkerBusy reports whether the worker has running tasks.
func (m *Master) WorkerBusy(id string) bool {
	w, ok := m.workers[id]
	return ok && w.running.len() > 0
}

// --- dispatch ---

// scheduleDispatch coalesces dispatch passes into a single
// zero-delay event.
func (m *Master) scheduleDispatch() {
	if m.dispatchPending {
		return
	}
	m.dispatchPending = true
	m.eng.After(0, "wq-dispatch", m.dispatchFn)
}

// resolveResources determines the allocation for a task: declared
// size, an estimator prediction for its category, or unknown.
func (m *Master) resolveResources(t *Task) (resources.Vector, bool) {
	if !t.Resources.IsZero() {
		return t.Resources, true
	}
	if m.estimator != nil {
		if v, ok := m.estimator.EstimateResources(t.Category); ok && !v.IsZero() {
			return v, true
		}
	}
	return resources.Zero, false
}

// dispatchOnce walks the waiting queue — highest priority first,
// submission order within a priority — and places every task that
// fits somewhere (later tasks may backfill around a blocked
// head-of-line task, as Work Queue does).
//
// The pass is indexed three ways: it returns immediately when nothing
// affecting placement changed since the last pass, it returns when
// every waiting task declares requirements and even the queue's
// smallest cannot fit the largest free worker, and each task is
// rejected in O(1) against the max-free bound before any roster scan.
//
// After the pass, buffered submissions are admitted into whatever
// room the placements opened under the admission cap (never mid-scan:
// the queue must not grow while Scan walks it).
func (m *Master) dispatchOnce() {
	m.dispatchPass()
	m.drainAdmission()
}

func (m *Master) dispatchPass() {
	if m.waiting.Len() == 0 || len(m.workers) == 0 {
		return
	}
	if m.rev == m.lastPassRev {
		// A pass already ran against this exact queue/capacity/config
		// state and placed everything placeable.
		return
	}
	m.lastPassRev = m.rev
	// maxFree bounds every eligible worker's available capacity from
	// above for the whole pass: placements only shrink frees. A failed
	// full roster scan refreshes it to the exact current value.
	maxFree := m.maxFreeCapacity()
	if m.queueStalled(maxFree) {
		return
	}
	m.waiting.Scan(func(id int) (bool, resources.Vector, bool) {
		t := m.tasks[id]
		res, known := m.resolveResources(t)
		if !known {
			return m.placeExclusive(t), t.Resources, false
		}
		if !res.Fits(maxFree) {
			return false, t.Resources, false
		}
		placed, scanned, full := m.placeKnown(t, res)
		if !placed && full {
			maxFree = scanned
			// With the refreshed exact bound, stop the pass once
			// nothing left in the queue can be placed.
			if m.queueStalled(maxFree) {
				return false, t.Resources, true
			}
		}
		return placed, t.Resources, false
	})
}

// queueStalled reports that no waiting task can be placed on any
// worker when maxFree bounds every worker's free capacity from above.
// Declared requirements are bounded below by the queue's minReq;
// undeclared tasks all place through their category's estimate, so
// each waiting category is checked once. A category with no estimate
// yet could still take the exclusive-placement path, which needs an
// idle worker. Estimates cannot change mid-pass (the pass is a single
// event), so the answer stays valid for the rest of the pass.
func (m *Master) queueStalled(maxFree resources.Vector) bool {
	if m.waiting.MinFits(maxFree) {
		return false
	}
	if m.waiting.unknownRes == 0 {
		return true
	}
	stalled := true
	m.waiting.ForEachUnknownCategory(func(cat string, _ int) {
		if !stalled {
			return
		}
		var est resources.Vector
		ok := false
		if m.estimator != nil {
			est, ok = m.estimator.EstimateResources(cat)
		}
		if ok && !est.IsZero() {
			if est.Fits(maxFree) {
				stalled = false
			}
			return
		}
		if m.idleCount > 0 {
			stalled = false
		}
	})
	return stalled
}

// maxFreeCapacity returns the component-wise maximum free capacity
// over non-draining workers: the avail-index root in O(1), or the
// retained roster scan in naive mode.
func (m *Master) maxFreeCapacity() resources.Vector {
	if !m.naivePlace {
		return m.avail.maxFree()
	}
	var free resources.Vector
	for _, wid := range m.naiveOrder {
		w := m.workers[wid]
		if !w.draining {
			free = free.Max(w.pool.Available())
		}
	}
	return free
}

// Cancel withdraws a task. A waiting task leaves the queue; a running
// task is stopped on its worker and its allocation freed. Canceling a
// finished or already-canceled task is an error. No completion
// callback fires for canceled tasks.
func (m *Master) Cancel(id int) error {
	t, ok := m.tasks[id]
	if !ok {
		return fmt.Errorf("wq: task %d not found", id)
	}
	switch t.State {
	case TaskWaiting:
		if m.cancelBuffered(id) {
			// Was parked in the admission buffer; never entered the queue.
		} else if tmr, pending := m.retryPending[id]; pending {
			tmr.Stop()
			delete(m.retryPending, id)
			delete(m.retryResume, id)
		} else {
			m.waiting.Remove(id, t.Resources)
			m.drainAdmission() // the cancellation freed a slot under the cap
		}
		m.rev++
	case TaskRunning:
		w := m.workers[t.WorkerID]
		if w == nil {
			return fmt.Errorf("wq: task %d running on unknown worker %q", id, t.WorkerID)
		}
		m.detachRunning(w.running.get(id))
		if w.draining && w.running.len() == 0 {
			defer m.finishDrain(w)
		}
		m.scheduleDispatch()
	default:
		return fmt.Errorf("wq: task %d is %v, cannot cancel", id, t.State)
	}
	t.State = TaskCanceled
	t.FinishedAt = m.eng.Now()
	return nil
}

// placeKnown scans the roster for a worker fitting res under the
// current policy. When the scan visited the whole roster without
// placing (fullScan && !placed), scannedMax carries the exact
// component-wise max free capacity observed, letting the caller
// tighten its pass-wide bound.
func (m *Master) placeKnown(t *Task, res resources.Vector) (placed bool, scannedMax resources.Vector, fullScan bool) {
	if m.policy == FirstFit && !m.naivePlace {
		// Indexed path: leftmost-fit descent through the avail tree.
		// On a miss the root is the exact max free, so the caller's
		// bound refresh costs nothing extra.
		slot := m.avail.findFirst(res)
		if slot < 0 {
			return false, m.avail.maxFree(), true
		}
		m.startTask(t, m.roster[slot], res, false)
		return true, resources.Zero, false
	}
	var chosen *simWorker
	var chosenFree int64
	// consider scores one worker under the current policy; true means
	// a FirstFit placement ended the scan.
	consider := func(w *simWorker) bool {
		if w.draining {
			return false
		}
		avail := w.pool.Available()
		scannedMax = scannedMax.Max(avail)
		if !res.Fits(avail) {
			return false
		}
		if m.policy == FirstFit {
			m.startTask(t, w, res, false)
			return true
		}
		// Score by free CPU after placement (the binding dimension
		// for HTC tasks); memory breaks ties implicitly via order.
		free := avail.Sub(res).MilliCPU
		better := chosen == nil ||
			(m.policy == BestFit && free < chosenFree) ||
			(m.policy == WorstFit && free > chosenFree)
		if better {
			chosen, chosenFree = w, free
		}
		return false
	}
	if m.naivePlace {
		// The retained scan, verbatim cost model included: join-order
		// id list with a map lookup per worker.
		for _, wid := range m.naiveOrder {
			if consider(m.workers[wid]) {
				return true, scannedMax, false
			}
		}
	} else {
		for _, w := range m.roster {
			if w != nil && consider(w) {
				return true, scannedMax, false
			}
		}
	}
	if chosen == nil {
		return false, scannedMax, true
	}
	m.startTask(t, chosen, res, false)
	return true, scannedMax, true
}

// placeExclusive places an unknown-requirement task alone on the
// first idle worker in join order, via the idle free list.
func (m *Master) placeExclusive(t *Task) bool {
	w := m.takeIdle()
	if w == nil {
		return false
	}
	m.startTask(t, w, w.pool.Capacity(), true)
	return true
}

func (m *Master) startTask(t *Task, w *simWorker, alloc resources.Vector, exclusive bool) {
	if err := w.pool.Acquire(alloc); err != nil {
		panic(fmt.Sprintf("wq: dispatch accounting bug: %v", err))
	}
	m.syncAvail(w)
	if w.running.len() == 0 && !w.draining {
		m.idleCount--
	}
	m.runningCount++
	m.totalUsed = m.totalUsed.Add(alloc)
	t.State = TaskRunning
	t.WorkerID = w.id
	t.StartedAt = m.eng.Now()
	t.Attempts++
	t.Gen++
	t.Allocated = alloc
	t.Exclusive = exclusive
	rt := m.newRunningTask()
	rt.task, rt.worker = t, w
	rt.aborted = false
	w.running.put(rt)
	m.armFastAbort(rt)

	// Input staging: shared files are fetched once per worker and
	// shared by all its tasks; the private input belongs to the task.
	rt.pending = 1 // barrier released after all fetches are set up
	for _, f := range t.SharedInputs {
		if w.cache[f.Name] {
			continue
		}
		rt.pending++
		m.ensureFile(w, f, func() { m.fetchDone(rt) })
	}
	m.flushFreeFetches()
	if t.InputMB > 0 && m.link != nil {
		rt.pending++
		rt.inTr = m.link.Start(t.InputMB, func() {
			rt.inTr = nil
			m.fetchDone(rt)
		})
	}
	m.fetchDone(rt) // release the setup barrier
}

// flushFreeFetches schedules the accumulated free-transfer arrivals
// as one zero-delay batch on the master's lane — one heap settle per
// staging wave instead of one event per file.
func (m *Master) flushFreeFetches() {
	if len(m.freeFetch) == 0 {
		return
	}
	m.eng.AfterBatch(0, m.lane, "wq-fetch-free", m.freeFetch)
	for i := range m.freeFetch {
		m.freeFetch[i] = nil
	}
	m.freeFetch = m.freeFetch[:0]
}

// ensureFile fetches a shared file onto the worker exactly once;
// callbacks queue while a fetch is in flight.
func (m *Master) ensureFile(w *simWorker, f File, cb func()) {
	if w.cache[f.Name] {
		cb()
		return
	}
	if _, inflight := w.fetching[f.Name]; inflight {
		w.fetching[f.Name] = append(w.fetching[f.Name], cb)
		return
	}
	w.fetching[f.Name] = []func(){cb}
	if m.link == nil || f.SizeMB <= 0 {
		// Free transfers arrive instantly; the arrivals for one task's
		// staging accumulate and go out as a single batch event.
		name := f.Name
		m.freeFetch = append(m.freeFetch, func() { m.fileArrived(w, name) })
		return
	}
	w.fetches[f.Name] = m.link.Start(f.SizeMB, func() {
		delete(w.fetches, f.Name)
		m.fileArrived(w, f.Name)
	})
}

func (m *Master) fileArrived(w *simWorker, name string) {
	if _, alive := m.workers[w.id]; !alive {
		return
	}
	w.cache[name] = true
	cbs := w.fetching[name]
	delete(w.fetching, name)
	for _, cb := range cbs {
		cb()
	}
}

func (m *Master) fetchDone(rt *runningTask) {
	if rt.aborted {
		// The attempt was stopped (kill, fast-abort, cancel) while a
		// shared-file fetch it was waiting on stayed in flight; the
		// late callback must not start execution.
		return
	}
	rt.pending--
	if rt.pending > 0 {
		return
	}
	// All inputs are on the worker: execute.
	t := rt.task
	rt.executing = true
	rt.execStart = m.eng.Now()
	rt.execUsage = t.Profile.Usage().Min(t.Allocated)
	m.busyUsage = m.busyUsage.Add(rt.execUsage)
	rt.execTmr = m.eng.After(t.Profile.ExecDuration, "wq-exec", rt.execDone)
}

func (m *Master) sendOutput(rt *runningTask) {
	t := rt.task
	if t.OutputMB > 0 && m.link != nil {
		rt.outTr = m.link.Start(t.OutputMB, func() {
			rt.outTr = nil
			m.completeTask(rt)
		})
		return
	}
	m.completeTask(rt)
}

func (m *Master) completeTask(rt *runningTask) {
	t, w := rt.task, rt.worker
	rt.abortTmr.Stop()
	w.running.remove(t.ID)
	w.pool.Release(t.Allocated)
	m.syncAvail(w)
	m.runningCount--
	m.totalUsed = m.totalUsed.Sub(t.Allocated)
	if w.running.len() == 0 && !w.draining {
		m.idleCount++
		m.markIdle(w)
	}
	m.recycleRunningTask(rt)
	t.State = TaskComplete
	t.FinishedAt = m.eng.Now()
	t.ExecWall = t.FinishedAt.Sub(t.StartedAt)
	t.Measured = t.Profile.Usage()
	m.completeCount++
	m.rev++
	res := Result{Task: *t}
	for _, fn := range m.onComplete {
		fn(res)
	}
	if w.draining && w.running.len() == 0 {
		m.finishDrain(w)
		return
	}
	m.scheduleDispatch()
}

// --- introspection ---

// Stats is a snapshot of the master's queue and worker pool.
type Stats struct {
	// Waiting counts queued tasks, failed tasks sitting out a retry
	// backoff, and buffered submissions (all still owed execution).
	Waiting     int
	Running     int
	Complete    int
	Quarantined int
	// Buffered counts submissions parked in the admission buffer;
	// Shed counts submissions rejected at the admission hard cap.
	Buffered int
	Shed     int

	Workers         int
	IdleWorkers     int
	DrainingWorkers int

	// Capacity is the summed capacity of connected workers; InUse is
	// the summed allocations of running tasks.
	Capacity resources.Vector
	InUse    resources.Vector
}

// Stats returns the current snapshot in O(1) from the master's
// incremental aggregates.
func (m *Master) Stats() Stats {
	return Stats{
		Waiting:         m.waiting.Len() + len(m.retryPending) + len(m.rescuable) + len(m.admQueue),
		Running:         m.runningCount,
		Complete:        m.completeCount,
		Quarantined:     m.fstats.Quarantined,
		Buffered:        len(m.admQueue),
		Shed:            m.ostats.Shed,
		Workers:         len(m.workers),
		IdleWorkers:     m.idleCount,
		DrainingWorkers: m.drainingCount,
		Capacity:        m.totalCap,
		InUse:           m.totalUsed,
	}
}

// ForEachWaiting visits every waiting task in dispatch order
// (priority descending, submission order within a priority) without
// allocating. The callback must treat the task as read-only and must
// not call back into the master.
func (m *Master) ForEachWaiting(fn func(t *Task)) {
	m.waiting.ForEach(func(id int) { fn(m.tasks[id]) })
}

// ForEachRunning visits every dispatched task without allocating,
// grouped by worker in join order; the order within a worker is
// unspecified. The callback must treat the task as read-only and must
// not call back into the master.
func (m *Master) ForEachRunning(fn func(t *Task)) {
	for _, w := range m.roster {
		if w == nil {
			continue
		}
		for _, rt := range w.running.rts {
			fn(rt.task)
		}
	}
}

// WaitingTasks returns copies of the queued tasks in queue order.
func (m *Master) WaitingTasks() []Task {
	ids := m.waiting.QueueOrder()
	out := make([]Task, 0, len(ids))
	for _, id := range ids {
		out = append(out, *m.tasks[id])
	}
	return out
}

// RunningTasks returns copies of all dispatched tasks, ordered by ID.
func (m *Master) RunningTasks() []Task {
	var out []Task
	m.ForEachRunning(func(t *Task) { out = append(out, *t) })
	slices.SortFunc(out, func(a, b Task) int { return cmp.Compare(a.ID, b.ID) })
	return out
}

// Rev returns the master's mutation revision: it changes whenever the
// queue, the worker roster, the policy or the estimator changes in a
// way that could alter a dispatch or planning pass. External planners
// (the multi-tenant arbiter) compare revisions across cycles to skip
// re-planning masters whose state is provably unchanged. Draining a
// worker does not bump the revision — the initiator of a drain must
// account for it separately.
func (m *Master) Rev() uint64 { return m.rev }

// ForEachWorker visits connected workers in join order with their
// capacity and draining flag, without allocating. The callback must
// not call back into the master.
func (m *Master) ForEachWorker(fn func(id string, capacity resources.Vector, draining bool)) {
	for _, w := range m.roster {
		if w == nil {
			continue
		}
		fn(w.id, w.pool.Capacity(), w.draining)
	}
}

// CompletedCount returns the number of completed tasks.
func (m *Master) CompletedCount() int { return m.completeCount }

// WorkerDetail describes one connected worker.
type WorkerDetail struct {
	ID          string
	Capacity    resources.Vector
	InUse       resources.Vector
	Running     int
	CachedFiles int
	Draining    bool
	JoinedAt    time.Time
}

// WorkerDetails returns per-worker state in join order — the data a
// `work_queue_status`-style CLI prints.
func (m *Master) WorkerDetails() []WorkerDetail {
	out := make([]WorkerDetail, 0, len(m.workers))
	for _, w := range m.roster {
		if w == nil {
			continue
		}
		out = append(out, WorkerDetail{
			ID:          w.id,
			Capacity:    w.pool.Capacity(),
			InUse:       w.pool.Used(),
			Running:     w.running.len(),
			CachedFiles: len(w.cache),
			Draining:    w.draining,
			JoinedAt:    w.joinedAt,
		})
	}
	return out
}
