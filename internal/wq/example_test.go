package wq_test

import (
	"fmt"
	"time"

	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

func ExampleMaster() {
	eng := simclock.NewEngine(time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC))
	master := wq.NewMaster(eng, nil)
	master.AddWorker("worker-1", resources.New(3, 12288, 100000))

	master.OnComplete(func(r wq.Result) {
		fmt.Printf("task %d done on %s after %v\n", r.Task.ID, r.Task.WorkerID, r.Task.ExecWall)
	})
	for i := 0; i < 3; i++ {
		master.Submit(wq.TaskSpec{
			Category:  "align",
			Resources: resources.New(1, 4096, 0),
			Profile:   wq.Profile{ExecDuration: time.Minute, UsedCPUMilli: 870},
		})
	}
	eng.Run() // virtual time: the three tasks run in parallel
	fmt.Println("elapsed:", eng.Elapsed())
	// Output:
	// task 1 done on worker-1 after 1m0s
	// task 2 done on worker-1 after 1m0s
	// task 3 done on worker-1 after 1m0s
	// elapsed: 1m0s
}
