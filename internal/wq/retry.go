package wq

import (
	"time"

	"hta/internal/resources"
)

// RetryPolicy bounds how the master resubmits failed task attempts
// (worker kills, fast-aborts). The zero value preserves the classic
// Work Queue behaviour: retry forever, immediately, never abort a
// straggler.
type RetryPolicy struct {
	// MaxAttempts quarantines a task once it has been dispatched this
	// many times without completing (poison-task protection: a task
	// that keeps killing workers stops being resubmitted). 0 = retry
	// forever.
	MaxAttempts int
	// BackoffBase delays the k-th resubmission of a task by
	// BackoffBase << (k-1), capped at BackoffMax. 0 = requeue
	// immediately.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff. 0 with a nonzero
	// BackoffBase means no cap.
	BackoffMax time.Duration
	// FastAbortMultiplier kills and resubmits a running task once its
	// wall time since dispatch exceeds multiplier × the category's
	// completed-task mean (Work Queue's fast-abort). Requires an
	// estimator with measurements for the category. 0 = disabled.
	FastAbortMultiplier float64
}

// backoff returns the delay before resubmitting a task that has
// failed `failures` times (failures ≥ 1).
func (p RetryPolicy) backoff(failures int) time.Duration {
	if p.BackoffBase <= 0 || failures <= 0 {
		return 0
	}
	d := p.BackoffBase
	for i := 1; i < failures; i++ {
		d *= 2
		if p.BackoffMax > 0 && d >= p.BackoffMax {
			return p.BackoffMax
		}
	}
	if p.BackoffMax > 0 && d > p.BackoffMax {
		return p.BackoffMax
	}
	return d
}

// SetRetryPolicy installs the retry policy for subsequent failures.
func (m *Master) SetRetryPolicy(p RetryPolicy) { m.retry = p }

// OnTaskFailed subscribes to permanent task failures (quarantine).
// The callback receives a copy of the task and fires from a
// zero-delay event, never re-entrantly from inside a master call.
func (m *Master) OnTaskFailed(fn func(Task)) { m.onFailed = append(m.onFailed, fn) }

// FailureStats aggregates the master's failure and recovery activity.
type FailureStats struct {
	WorkerKills int // KillWorker calls (preemptions, crashes)
	Requeues    int // task attempts returned to the queue by kills
	FastAborts  int // straggler attempts killed by fast-abort
	Quarantined int // tasks permanently failed (retry budget spent)
	// LostCoreSeconds is execution already performed by attempts that
	// were killed, aborted or canceled — work that must be redone.
	LostCoreSeconds float64
	// UsefulCoreSeconds is execution performed by attempts that
	// completed.
	UsefulCoreSeconds float64
}

// Goodput returns useful execution as a fraction of all execution
// performed (1.0 when nothing was lost; 0 before any execution).
func (s FailureStats) Goodput() float64 {
	total := s.UsefulCoreSeconds + s.LostCoreSeconds
	if total <= 0 {
		return 0
	}
	return s.UsefulCoreSeconds / total
}

// FailureStats returns the failure/recovery counters.
func (m *Master) FailureStats() FailureStats { return m.fstats }

// SubmittedCount returns the number of tasks ever submitted.
func (m *Master) SubmittedCount() int { return m.nextID }

// QuarantinedCount returns the number of permanently failed tasks.
func (m *Master) QuarantinedCount() int { return m.fstats.Quarantined }

// failAttempt processes one failed attempt of a stopped, deallocated
// task: it either quarantines the task (budget spent), schedules a
// delayed resubmission, or reports that the caller should requeue it
// immediately (returned true).
func (m *Master) failAttempt(t *Task) (requeueNow bool) {
	return m.failAttemptCharged(t, true)
}

// failAttemptCharged is failAttempt with the budget charge optional:
// a task whose worker died while the master itself was down is not at
// fault, so the rescue-window expiry retries it with backoff without
// consuming a retry-budget slot (charge=false skips the quarantine
// check, never the backoff).
func (m *Master) failAttemptCharged(t *Task, charge bool) (requeueNow bool) {
	t.Allocated = resources.Zero
	t.Exclusive = false
	if charge && m.retry.MaxAttempts > 0 && t.Attempts >= m.retry.MaxAttempts {
		m.quarantine(t)
		return false
	}
	t.State = TaskWaiting
	failures := t.Attempts
	if failures < 1 {
		failures = 1
	}
	if d := m.retry.backoff(failures); d > 0 {
		m.scheduleRetry(t, d)
		return false
	}
	return true
}

// quarantine permanently fails a task and notifies subscribers from a
// zero-delay event (so callbacks never run inside KillWorker's loop).
func (m *Master) quarantine(t *Task) {
	t.State = TaskQuarantined
	t.FinishedAt = m.eng.Now()
	m.fstats.Quarantined++
	if len(m.onFailed) > 0 {
		cp := *t
		m.eng.After(0, "wq-task-failed", func() {
			for _, fn := range m.onFailed {
				fn(cp)
			}
		})
	}
}

// FailAllPending settles every waiting task as quarantined — queued,
// parked in the admission buffer, or sitting out a retry backoff —
// regardless of remaining retry budget. It is the offboarding handback
// hook: a tenant leaving the cluster has its pending (never-started)
// work terminated with the same terminal state and callbacks as a
// poison task, so the conservation invariant submitted = completed +
// quarantined (+ shed) holds through the departure, while running
// tasks finish normally on their draining workers. Returns the number
// of tasks quarantined.
func (m *Master) FailAllPending() int {
	ids := make([]int, 0, m.waiting.Len()+len(m.retryPending)+len(m.admQueue))
	for id := 1; id < len(m.byID); id++ {
		if t := m.byID[id]; t != nil && t.State == TaskWaiting {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		t := m.byID[id]
		if m.cancelBuffered(id) {
			// Was parked in the admission buffer; never entered the queue.
		} else if tmr, pending := m.retryPending[id]; pending {
			tmr.Stop()
			delete(m.retryPending, id)
			delete(m.retryResume, id)
		} else {
			m.waiting.Remove(id, t.Resources, m.catIDFor(t))
		}
		m.quarantine(t)
	}
	if m.inOverload && len(m.admQueue) == 0 {
		// The queue and buffer are empty now; close the interval.
		m.exitOverload()
	}
	if len(ids) > 0 {
		m.rev++
	}
	return len(ids)
}

// scheduleRetry re-enqueues the task at the front of the queue after
// the backoff delay. While delayed, the task is waiting but not in
// the queue; Stats counts it and Cancel stops the timer.
func (m *Master) scheduleRetry(t *Task, d time.Duration) {
	id := t.ID
	m.retryResume[id] = m.eng.Now().Add(d)
	m.retryPending[id] = m.eng.After(d, "wq-retry", func() {
		delete(m.retryPending, id)
		delete(m.retryResume, id)
		m.enqueueFront([]int{id})
	})
}

// enqueueFront returns previously dispatched tasks to the front of
// the queue in submission order (they are the oldest outstanding
// work).
func (m *Master) enqueueFront(ids []int) {
	if len(ids) == 0 {
		return
	}
	m.waiting.PushFront(ids, func(id int) (int, resources.Vector, int32) {
		t := m.byID[id]
		return t.Priority, t.Resources, m.catIDFor(t)
	})
	m.notePeakWaiting()
	m.rev++
	m.scheduleDispatch()
}

// armFastAbort starts the straggler deadline for a freshly dispatched
// attempt: multiplier × the category's completed-task mean, measured
// from dispatch (transfers included, matching ExecWall).
func (m *Master) armFastAbort(rt *runningTask) {
	if m.retry.FastAbortMultiplier <= 0 || m.estimator == nil {
		return
	}
	mean, ok := m.estimator.EstimateExecTime(rt.task.Category)
	if !ok || mean <= 0 {
		return
	}
	deadline := time.Duration(float64(mean) * m.retry.FastAbortMultiplier)
	if rt.abortFn == nil {
		// Bound lazily: only workloads with fast-abort armed pay for
		// the closure, once per record.
		rt.abortFn = func() { m.fastAbort(rt) }
	}
	rt.abortTmr = m.eng.After(deadline, "wq-fast-abort", rt.abortFn)
}

// fastAbort kills a straggling attempt on its worker and resubmits
// (or quarantines) the task. The worker itself stays connected.
func (m *Master) fastAbort(rt *runningTask) {
	t, w := rt.task, rt.worker
	if t == nil || w.running.get(t.ID) != rt {
		return // attempt already finished or was stopped
	}
	m.fstats.FastAborts++
	m.detachRunning(rt)
	if m.failAttempt(t) {
		m.enqueueFront([]int{t.ID})
	}
	if w.draining && w.running.len() == 0 {
		m.finishDrain(w)
		return
	}
	m.scheduleDispatch()
}

// detachRunning stops a dispatched attempt and releases its worker
// allocation, leaving the task's next state to the caller.
func (m *Master) detachRunning(rt *runningTask) {
	t, w := rt.task, rt.worker
	m.stopTask(rt)
	w.running.remove(t.ID)
	w.pool.Release(t.Allocated)
	m.syncAvail(w)
	m.runningCount--
	m.totalUsed = m.totalUsed.Sub(t.Allocated)
	if w.running.len() == 0 && !w.draining {
		m.idleCount++
		m.markIdle(w)
	}
	m.rev++
}

// WaitingRetries returns the number of failed tasks sitting out a
// backoff delay (waiting but not yet back in the queue).
func (m *Master) WaitingRetries() int { return len(m.retryPending) }
