package wq

import (
	"cmp"
	"math"
	"slices"

	"hta/internal/resources"
)

// maxVector is the identity for component-wise Min.
var maxVector = resources.Vector{MilliCPU: math.MaxInt64, MemoryMB: math.MaxInt64, DiskMB: math.MaxInt64}

// waitQueue is the master's indexed waiting queue: tasks are bucketed
// by priority and kept FIFO within a bucket, so a dispatch pass walks
// tasks in dispatch order (priority descending, submission order
// within a priority) without the per-pass copy + stable sort the
// original implementation paid. A stable sort of the global FIFO by
// descending priority visits exactly the bucket order, so the two are
// equivalent; the global FIFO rank of every task is retained in seq
// so WaitingTasks can still report queue order.
//
// Task IDs are dense (1..nextID), so the position and rank indexes are
// id-indexed slices rather than maps, and each bucket entry carries
// the task's declared requirement and interned category inline — a
// dispatch pass reads contiguous entries without hashing or chasing
// the task record for fields that only gate placement.
//
// Removal (Cancel) is O(1) amortized: the entry is tombstoned in its
// bucket via the pos index and compacted opportunistically.
type waitQueue struct {
	buckets map[int]*prioBucket
	prios   []int         // bucket priorities, descending
	pos     []*prioBucket // by task id: live waiting id -> its bucket (the position index)
	seq     []int64       // by task id: global FIFO rank, valid while pos[id] != nil

	nextSeq  int64 // rank for the next Submit (queue back)
	frontSeq int64 // rank just before the current queue front

	n int // live entries

	// minReq is a component-wise lower bound on the declared
	// requirement of any waiting task (exact after inserts, possibly
	// stale-low after removals — always safe as a bound). unknownRes
	// counts waiting tasks with no declared requirement; while it is
	// zero and minReq cannot fit the largest free worker, a dispatch
	// pass can exit immediately.
	minReq     resources.Vector
	unknownRes int

	// freeBucket holds the most recently dropped bucket for reuse, and
	// emptied is Scan's scratch list of drained buckets. Both exist so
	// the steady drain-and-refill regime — one priority, queue emptying
	// between submissions — recycles its bucket (and the bucket's entry
	// storage) instead of allocating a fresh one per cycle.
	freeBucket *prioBucket
	emptied    []*prioBucket

	// unknownCats counts the zero-declared waiting tasks per interned
	// category. Undeclared tasks all place through their category's
	// estimate (or the exclusive path when no estimate exists yet), so
	// a handful of per-category checks extends the stalled-queue early
	// exit to runs where nothing is declared — without them a 40k-task
	// undeclared queue is walked end-to-end on every completion.
	unknownCats map[int32]int
}

// wqEnt is one waiting task in a priority bucket: the id plus the two
// fields a dispatch pass needs before it ever touches the task record.
// catID is intern.None for tasks with a declared requirement — the
// category only matters when placement goes through the estimator.
type wqEnt struct {
	id       int32
	catID    int32
	declared resources.Vector
}

type prioBucket struct {
	prio  int
	ents  []wqEnt // FIFO; entries whose pos no longer maps here are tombstones
	start int     // consumed front: ents[:start] are all tombstones
	dead  int     // tombstones at or after start
}

// advance moves the consumed-front pointer past leading tombstones,
// so the steady one-completion-one-placement regime pays O(1) per
// pass instead of re-walking every previously placed entry.
func (b *prioBucket) advance(q *waitQueue) {
	for b.start < len(b.ents) && q.pos[b.ents[b.start].id] != b {
		b.start++
		b.dead--
	}
}

func newWaitQueue() *waitQueue {
	return &waitQueue{
		buckets:     make(map[int]*prioBucket),
		minReq:      maxVector,
		unknownCats: make(map[int32]int),
	}
}

// Len returns the number of waiting tasks.
func (q *waitQueue) Len() int { return q.n }

// ensure grows the id-indexed slices to cover id. Ids are dense and
// the growth is explicit doubling: append's 1.25× policy for large
// slices would re-copy and re-zero a million-entry index four times
// over instead of twice.
func (q *waitQueue) ensure(id int) {
	if id < len(q.pos) {
		return
	}
	n := id + 1
	if n > cap(q.pos) {
		c := 2 * cap(q.pos)
		if c < 1024 {
			c = 1024
		}
		if c < n {
			c = n
		}
		pos := make([]*prioBucket, n, c)
		copy(pos, q.pos)
		q.pos = pos
		seq := make([]int64, n, c)
		copy(seq, q.seq)
		q.seq = seq
		return
	}
	q.pos = q.pos[:n]
	q.seq = q.seq[:n]
}

func (q *waitQueue) bucket(prio int) *prioBucket {
	b, ok := q.buckets[prio]
	if !ok {
		if b = q.freeBucket; b != nil {
			q.freeBucket = nil
			b.prio = prio
		} else {
			b = &prioBucket{prio: prio}
		}
		q.buckets[prio] = b
		// Insert prio into the descending list.
		i, _ := slices.BinarySearchFunc(q.prios, prio, func(e, t int) int { return cmp.Compare(t, e) })
		q.prios = append(q.prios, 0)
		copy(q.prios[i+1:], q.prios[i:])
		q.prios[i] = prio
	}
	return b
}

func (q *waitQueue) track(id int, prio int, declared resources.Vector, catID int32) *prioBucket {
	b := q.bucket(prio)
	q.ensure(id)
	q.pos[id] = b
	q.n++
	if declared.IsZero() {
		q.unknownRes++
		q.unknownCats[catID]++
	} else {
		q.minReq = q.minReq.Min(declared)
	}
	return b
}

// Push appends a task at the back of the queue. catID is the task's
// interned category when declared is zero (it routes through the
// estimator), intern.None otherwise.
func (q *waitQueue) Push(id int, prio int, declared resources.Vector, catID int32) {
	b := q.track(id, prio, declared, catID)
	if len(b.ents) == cap(b.ents) && cap(b.ents) >= 1024 {
		// Double explicitly past append's 1.25× large-slice policy: a
		// million-task submission burst would otherwise re-copy the
		// bucket four times over instead of twice.
		ents := make([]wqEnt, len(b.ents), 2*cap(b.ents))
		copy(ents, b.ents)
		b.ents = ents
	}
	b.ents = append(b.ents, wqEnt{id: int32(id), catID: catID, declared: declared})
	q.seq[id] = q.nextSeq
	q.nextSeq++
}

// PushFront requeues tasks at the front of the queue, preserving the
// given order (the oldest outstanding work, e.g. tasks returned by a
// killed worker).
func (q *waitQueue) PushFront(ids []int, prioOf func(id int) (prio int, declared resources.Vector, catID int32)) {
	if len(ids) == 0 {
		return
	}
	// Ranks just before the current front, ascending across ids.
	base := q.frontSeq - int64(len(ids))
	q.frontSeq = base
	perBucket := make(map[*prioBucket][]wqEnt)
	for i, id := range ids {
		prio, declared, catID := prioOf(id)
		b := q.track(id, prio, declared, catID)
		q.seq[id] = base + int64(i)
		perBucket[b] = append(perBucket[b], wqEnt{id: int32(id), catID: catID, declared: declared})
	}
	for _, prio := range q.prios {
		b := q.buckets[prio]
		if front := perBucket[b]; len(front) > 0 {
			b.ents = append(front, b.ents[b.start:]...)
			b.start = 0
		}
	}
}

// Remove tombstones a waiting task in O(1); compaction is amortized.
// declared and catID must match what the task was pushed with.
func (q *waitQueue) Remove(id int, declared resources.Vector, catID int32) bool {
	if id >= len(q.pos) || q.pos[id] == nil {
		return false
	}
	b := q.pos[id]
	q.untrack(id, declared, catID)
	b.dead++
	if b.dead > 32 && b.dead > (len(b.ents)-b.start)/2 {
		q.compact(b)
		if len(b.ents) == 0 {
			q.dropBucket(b)
		}
	}
	return true
}

func (q *waitQueue) untrack(id int, declared resources.Vector, catID int32) {
	q.pos[id] = nil
	q.n--
	if declared.IsZero() {
		q.unknownRes--
		if q.unknownCats[catID]--; q.unknownCats[catID] == 0 {
			delete(q.unknownCats, catID)
		}
	}
	if q.n == 0 {
		// Queue drained: the requirement bound resets exactly.
		q.minReq = maxVector
		q.frontSeq = 0
		q.nextSeq = 0
	}
}

func (q *waitQueue) compact(b *prioBucket) {
	live := b.ents[:0]
	for _, e := range b.ents[b.start:] {
		if q.pos[e.id] == b {
			live = append(live, e)
		}
	}
	b.ents = live
	b.start = 0
	b.dead = 0
}

func (q *waitQueue) dropBucket(b *prioBucket) {
	delete(q.buckets, b.prio)
	for i, p := range q.prios {
		if p == b.prio {
			q.prios = append(q.prios[:i], q.prios[i+1:]...)
			break
		}
	}
	b.ents = b.ents[:0]
	b.start, b.dead = 0, 0
	q.freeBucket = b
}

// Scan visits every waiting task in dispatch order with its inline
// entry fields. fn reports whether the task was placed; placed entries
// and tombstones are compacted away as the scan walks each bucket. fn
// must not mutate the queue (no Push/Remove) while the scan runs.
//
// fn's stop result ends the pass after the current task: on a
// 10k-worker fleet a completion would otherwise walk tens of
// thousands of provably-unplaceable tasks, so the dispatcher stops as
// soon as its capacity bound rules the rest out.
//
// Placed entries become tombstones (untracked, compacted once they
// dominate their bucket) rather than being compacted inline: the
// inline rebuild shifted the entire unvisited tail on every
// early-stopped pass, which turned the steady one-completion-
// one-placement regime of a million-task run into a quadratic
// memmove.
func (q *waitQueue) Scan(fn func(id int, catID int32, declared resources.Vector) (placed bool, stop bool)) {
	emptied := q.emptied[:0]
	stopped := false
	for _, prio := range q.prios {
		if stopped {
			break
		}
		b := q.buckets[prio]
		for i := b.start; i < len(b.ents); i++ {
			e := b.ents[i]
			if q.pos[e.id] != b {
				continue // tombstone
			}
			placed, stop := fn(int(e.id), e.catID, e.declared)
			if placed {
				q.untrack(int(e.id), e.declared, e.catID)
				b.dead++
			}
			if stop {
				stopped = true
				break
			}
		}
		b.advance(q)
		if b.start == len(b.ents) {
			b.ents = b.ents[:0]
			b.start, b.dead = 0, 0
		} else if b.dead > 32 && b.dead > (len(b.ents)-b.start)/2 {
			q.compact(b)
		} else if b.start > 1024 && b.start > len(b.ents)/2 {
			// Reclaim the consumed prefix once it dominates the array.
			q.compact(b)
		}
		if len(b.ents) == 0 {
			emptied = append(emptied, b)
		}
	}
	for i, b := range emptied {
		q.dropBucket(b)
		emptied[i] = nil
	}
	q.emptied = emptied[:0]
}

// ForEach visits every waiting task in dispatch order (priority
// descending, FIFO within a priority) without copying or allocating.
func (q *waitQueue) ForEach(fn func(id int)) {
	for _, prio := range q.prios {
		b := q.buckets[prio]
		for _, e := range b.ents[b.start:] {
			if q.pos[e.id] == b {
				fn(int(e.id))
			}
		}
	}
}

// QueueOrder returns the live ids in global FIFO order (the order the
// pre-index implementation kept its waiting slice in).
func (q *waitQueue) QueueOrder() []int {
	out := make([]int, 0, q.n)
	for _, prio := range q.prios {
		b := q.buckets[prio]
		for _, e := range b.ents[b.start:] {
			if q.pos[e.id] == b {
				out = append(out, int(e.id))
			}
		}
	}
	slices.SortFunc(out, func(a, b int) int { return cmp.Compare(q.seq[a], q.seq[b]) })
	return out
}

// ForEachUnknownCategory visits the interned categories of
// zero-declared waiting tasks with their counts. Iteration order is
// unspecified; callers must compute order-independent results.
func (q *waitQueue) ForEachUnknownCategory(fn func(catID int32, n int)) {
	for catID, n := range q.unknownCats {
		fn(catID, n)
	}
}

// MinFits reports whether the queue's requirement lower bound fits
// free. When it returns false and the queue holds no
// unknown-requirement tasks, no waiting task can be placed anywhere
// with at most free available — the dispatch pass can exit early.
func (q *waitQueue) MinFits(free resources.Vector) bool {
	return q.minReq.MilliCPU <= free.MilliCPU &&
		q.minReq.MemoryMB <= free.MemoryMB &&
		q.minReq.DiskMB <= free.DiskMB
}
