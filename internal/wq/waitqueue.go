package wq

import (
	"cmp"
	"math"
	"slices"
	"sort"

	"hta/internal/resources"
)

// maxVector is the identity for component-wise Min.
var maxVector = resources.Vector{MilliCPU: math.MaxInt64, MemoryMB: math.MaxInt64, DiskMB: math.MaxInt64}

// waitQueue is the master's indexed waiting queue: tasks are bucketed
// by priority and kept FIFO within a bucket, so a dispatch pass walks
// tasks in dispatch order (priority descending, submission order
// within a priority) without the per-pass copy + stable sort the
// original implementation paid. A stable sort of the global FIFO by
// descending priority visits exactly the bucket order, so the two are
// equivalent; the global FIFO rank of every task is retained in seq
// so WaitingTasks can still report queue order.
//
// Removal (Cancel) is O(1) amortized: the entry is tombstoned in its
// bucket via the pos index and compacted opportunistically.
type waitQueue struct {
	buckets map[int]*prioBucket
	prios   []int               // bucket priorities, descending
	pos     map[int]*prioBucket // live waiting id -> its bucket (the position index)
	seq     map[int]int64       // live waiting id -> global FIFO rank

	nextSeq  int64 // rank for the next Submit (queue back)
	frontSeq int64 // rank just before the current queue front

	n int // live entries

	// minReq is a component-wise lower bound on the declared
	// requirement of any waiting task (exact after inserts, possibly
	// stale-low after removals — always safe as a bound). unknownRes
	// counts waiting tasks with no declared requirement; while it is
	// zero and minReq cannot fit the largest free worker, a dispatch
	// pass can exit immediately.
	minReq     resources.Vector
	unknownRes int

	// unknownCats counts the zero-declared waiting tasks per category
	// and catOf remembers each such task's category for untracking.
	// Undeclared tasks all place through their category's estimate (or
	// the exclusive path when no estimate exists yet), so a handful of
	// per-category checks extends the stalled-queue early exit to runs
	// where nothing is declared — without them a 40k-task undeclared
	// queue is walked end-to-end on every completion.
	unknownCats map[string]int
	catOf       map[int]string
}

type prioBucket struct {
	prio  int
	ids   []int // FIFO; entries whose pos no longer maps here are tombstones
	start int   // consumed front: ids[:start] are all tombstones
	dead  int   // tombstones at or after start
}

// advance moves the consumed-front pointer past leading tombstones,
// so the steady one-completion-one-placement regime pays O(1) per
// pass instead of re-walking every previously placed entry.
func (b *prioBucket) advance(q *waitQueue) {
	for b.start < len(b.ids) && q.pos[b.ids[b.start]] != b {
		b.start++
		b.dead--
	}
}

func newWaitQueue() *waitQueue {
	return &waitQueue{
		buckets:     make(map[int]*prioBucket),
		pos:         make(map[int]*prioBucket),
		seq:         make(map[int]int64),
		minReq:      maxVector,
		unknownCats: make(map[string]int),
		catOf:       make(map[int]string),
	}
}

// Len returns the number of waiting tasks.
func (q *waitQueue) Len() int { return q.n }

func (q *waitQueue) bucket(prio int) *prioBucket {
	b, ok := q.buckets[prio]
	if !ok {
		b = &prioBucket{prio: prio}
		q.buckets[prio] = b
		// Insert prio into the descending list.
		i := sort.Search(len(q.prios), func(i int) bool { return q.prios[i] <= prio })
		q.prios = append(q.prios, 0)
		copy(q.prios[i+1:], q.prios[i:])
		q.prios[i] = prio
	}
	return b
}

func (q *waitQueue) track(id int, prio int, declared resources.Vector, cat string) *prioBucket {
	b := q.bucket(prio)
	q.pos[id] = b
	q.n++
	if declared.IsZero() {
		q.unknownRes++
		q.unknownCats[cat]++
		q.catOf[id] = cat
	} else {
		q.minReq = q.minReq.Min(declared)
	}
	return b
}

// Push appends a task at the back of the queue.
func (q *waitQueue) Push(id int, prio int, declared resources.Vector, cat string) {
	b := q.track(id, prio, declared, cat)
	b.ids = append(b.ids, id)
	q.seq[id] = q.nextSeq
	q.nextSeq++
}

// PushFront requeues tasks at the front of the queue, preserving the
// given order (the oldest outstanding work, e.g. tasks returned by a
// killed worker).
func (q *waitQueue) PushFront(ids []int, prioOf func(id int) (prio int, declared resources.Vector, cat string)) {
	if len(ids) == 0 {
		return
	}
	// Ranks just before the current front, ascending across ids.
	base := q.frontSeq - int64(len(ids))
	q.frontSeq = base
	perBucket := make(map[*prioBucket][]int)
	for i, id := range ids {
		prio, declared, cat := prioOf(id)
		b := q.track(id, prio, declared, cat)
		q.seq[id] = base + int64(i)
		perBucket[b] = append(perBucket[b], id)
	}
	for _, prio := range q.prios {
		b := q.buckets[prio]
		if front := perBucket[b]; len(front) > 0 {
			b.ids = append(front, b.ids[b.start:]...)
			b.start = 0
		}
	}
}

// Remove tombstones a waiting task in O(1); compaction is amortized.
func (q *waitQueue) Remove(id int, declared resources.Vector) bool {
	b, ok := q.pos[id]
	if !ok {
		return false
	}
	q.untrack(id, declared)
	b.dead++
	if b.dead > 32 && b.dead > (len(b.ids)-b.start)/2 {
		q.compact(b)
		if len(b.ids) == 0 {
			q.dropBucket(b)
		}
	}
	return true
}

func (q *waitQueue) untrack(id int, declared resources.Vector) {
	delete(q.pos, id)
	delete(q.seq, id)
	q.n--
	if declared.IsZero() {
		q.unknownRes--
		cat := q.catOf[id]
		delete(q.catOf, id)
		if q.unknownCats[cat]--; q.unknownCats[cat] == 0 {
			delete(q.unknownCats, cat)
		}
	}
	if q.n == 0 {
		// Queue drained: the requirement bound resets exactly.
		q.minReq = maxVector
		q.frontSeq = 0
		q.nextSeq = 0
	}
}

func (q *waitQueue) compact(b *prioBucket) {
	live := b.ids[:0]
	for _, id := range b.ids[b.start:] {
		if q.pos[id] == b {
			live = append(live, id)
		}
	}
	b.ids = live
	b.start = 0
	b.dead = 0
}

func (q *waitQueue) dropBucket(b *prioBucket) {
	delete(q.buckets, b.prio)
	for i, p := range q.prios {
		if p == b.prio {
			q.prios = append(q.prios[:i], q.prios[i+1:]...)
			break
		}
	}
}

// Scan visits every waiting task in dispatch order. fn reports
// whether the task was placed; placed entries and tombstones are
// compacted away as the scan walks each bucket. fn must not mutate
// the queue (no Push/Remove) while the scan runs.
//
// fn's stop result ends the pass after the current task: on a
// 10k-worker fleet a completion would otherwise walk tens of
// thousands of provably-unplaceable tasks, so the dispatcher stops as
// soon as its capacity bound rules the rest out.
//
// Placed entries become tombstones (untracked, compacted once they
// dominate their bucket) rather than being compacted inline: the
// inline rebuild shifted the entire unvisited tail on every
// early-stopped pass, which turned the steady one-completion-
// one-placement regime of a million-task run into a quadratic
// memmove.
func (q *waitQueue) Scan(fn func(id int) (placed bool, declared resources.Vector, stop bool)) {
	var emptied []*prioBucket
	stopped := false
	for _, prio := range q.prios {
		if stopped {
			break
		}
		b := q.buckets[prio]
		for i := b.start; i < len(b.ids); i++ {
			id := b.ids[i]
			if q.pos[id] != b {
				continue // tombstone
			}
			placed, declared, stop := fn(id)
			if placed {
				q.untrack(id, declared)
				b.dead++
			}
			if stop {
				stopped = true
				break
			}
		}
		b.advance(q)
		if b.start == len(b.ids) {
			b.ids = b.ids[:0]
			b.start, b.dead = 0, 0
		} else if b.dead > 32 && b.dead > (len(b.ids)-b.start)/2 {
			q.compact(b)
		} else if b.start > 1024 && b.start > len(b.ids)/2 {
			// Reclaim the consumed prefix once it dominates the array.
			q.compact(b)
		}
		if len(b.ids) == 0 {
			emptied = append(emptied, b)
		}
	}
	for _, b := range emptied {
		q.dropBucket(b)
	}
}

// ForEach visits every waiting task in dispatch order (priority
// descending, FIFO within a priority) without copying or allocating.
func (q *waitQueue) ForEach(fn func(id int)) {
	for _, prio := range q.prios {
		b := q.buckets[prio]
		for _, id := range b.ids[b.start:] {
			if q.pos[id] == b {
				fn(id)
			}
		}
	}
}

// QueueOrder returns the live ids in global FIFO order (the order the
// pre-index implementation kept its waiting slice in).
func (q *waitQueue) QueueOrder() []int {
	out := make([]int, 0, q.n)
	for id := range q.seq {
		out = append(out, id)
	}
	slices.SortFunc(out, func(a, b int) int { return cmp.Compare(q.seq[a], q.seq[b]) })
	return out
}

// ForEachUnknownCategory visits the categories of zero-declared
// waiting tasks with their counts. Iteration order is unspecified;
// callers must compute order-independent results.
func (q *waitQueue) ForEachUnknownCategory(fn func(cat string, n int)) {
	for cat, n := range q.unknownCats {
		fn(cat, n)
	}
}

// MinFits reports whether the queue's requirement lower bound fits
// free. When it returns false and the queue holds no
// unknown-requirement tasks, no waiting task can be placed anywhere
// with at most free available — the dispatch pass can exit early.
func (q *waitQueue) MinFits(free resources.Vector) bool {
	return q.minReq.MilliCPU <= free.MilliCPU &&
		q.minReq.MemoryMB <= free.MemoryMB &&
		q.minReq.DiskMB <= free.DiskMB
}
