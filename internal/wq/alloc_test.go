package wq

import (
	"fmt"
	"testing"
	"time"

	"hta/internal/resources"
	"hta/internal/simclock"
)

// TestDispatchSteadyStateZeroAlloc pins the steady-state cost of the
// full submit → dispatch → execute → complete cycle at zero
// allocations per task. Everything on that path draws from recycled
// or slab-backed storage — Task records from the task slab, dispatch
// records from the free list, timers from the engine's record slab,
// wheel slots from intrusive lists — so once the slabs have headroom
// a task churns through the master without touching the garbage
// collector. The warmup below tops up every geometric buffer
// (task slab, byID index, queue buckets, engine records) and then
// verifies the amortization really is over: 100 measured cycles must
// not allocate at all.
func TestDispatchSteadyStateZeroAlloc(t *testing.T) {
	eng := simclock.NewEngine(t0)
	m := NewMaster(eng, nil)
	for i := 0; i < 8; i++ {
		m.AddWorker(fmt.Sprintf("w%d", i), resources.New(4, 16384, 100000))
	}
	spec := knownTask("steady", 1, 30*time.Second)

	// Warm up: churn enough tasks to grow every amortized structure,
	// then keep going until the task slab has headroom for the whole
	// measured run (the slab refills every few thousand tasks; a
	// refill inside the probe would show up as a fractional alloc).
	const runs = 100
	for i := 0; i < 4096 || cap(m.taskSlab)-len(m.taskSlab) <= runs+1; i++ {
		m.Submit(spec)
		eng.Run()
	}

	avg := testing.AllocsPerRun(runs, func() {
		m.Submit(spec)
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state dispatch cycle allocates %v objects/task, want 0", avg)
	}
}
