package wire

import (
	"sync"

	"hta/internal/wq"
)

// FlowAdapter lets a workflow runner (internal/flow) drive a TCP
// master: task specs are submitted as shell commands and completions
// are translated back into wq.Results keyed by the spec's Tag.
type FlowAdapter struct {
	m *Master

	mu   sync.Mutex
	tags map[int]string
	subs []func(wq.Result)
}

// NewFlowAdapter wraps a TCP master.
func NewFlowAdapter(m *Master) *FlowAdapter {
	a := &FlowAdapter{m: m, tags: make(map[int]string)}
	m.OnComplete(a.relay)
	return a
}

// Submit implements flow.Scheduler.
func (a *FlowAdapter) Submit(spec wq.TaskSpec) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	id := a.m.Submit(spec.Command, spec.Category, spec.Resources)
	a.tags[id] = spec.Tag
	return id
}

// OnComplete implements flow.Scheduler.
func (a *FlowAdapter) OnComplete(fn func(wq.Result)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.subs = append(a.subs, fn)
}

func (a *FlowAdapter) relay(r Result) {
	a.mu.Lock()
	tag := a.tags[r.Task.ID]
	delete(a.tags, r.Task.ID)
	subs := make([]func(wq.Result), len(a.subs))
	copy(subs, a.subs)
	a.mu.Unlock()
	res := wq.Result{Task: wq.Task{
		ID: r.Task.ID,
		TaskSpec: wq.TaskSpec{
			Tag:       tag,
			Command:   r.Task.Command,
			Category:  r.Task.Category,
			Resources: r.Task.Resources,
		},
		State:    wq.TaskComplete,
		WorkerID: r.Task.WorkerID,
		Attempts: r.Task.Attempts,
		ExecWall: r.Task.Wall,
	}}
	for _, fn := range subs {
		fn(res)
	}
}
