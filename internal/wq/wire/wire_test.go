package wire

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hta/internal/resources"
)

func newPair(t *testing.T, workers int, capacity resources.Vector) (*Master, []*Worker) {
	t.Helper()
	m, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	var ws []*Worker
	for i := 0; i < workers; i++ {
		w, err := Connect(m.Addr(), WorkerConfig{
			ID:       fmt.Sprintf("w%d", i+1),
			Capacity: capacity,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		ws = append(ws, w)
	}
	waitFor(t, func() bool { return m.Stats().Workers == workers }, "workers to register")
	return m, ws
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSubmitAndExecute(t *testing.T) {
	m, _ := newPair(t, 1, resources.New(2, 1024, 100))
	var mu sync.Mutex
	var got []Result
	m.OnComplete(func(r Result) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	id := m.Submit("echo hello", "test", resources.New(1, 256, 10))
	waitFor(t, func() bool { return m.Stats().Done == 1 }, "task completion")
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("completions = %d", len(got))
	}
	r := got[0].Task
	if r.ID != id || r.ExitCode != 0 {
		t.Errorf("result = %+v", r)
	}
	if strings.TrimSpace(r.Output) != "hello" {
		t.Errorf("output = %q", r.Output)
	}
	if r.WorkerID != "w1" || r.Attempts != 1 {
		t.Errorf("worker=%s attempts=%d", r.WorkerID, r.Attempts)
	}
	stored, ok := m.Task(id)
	if !ok || stored.Status != StatusDone {
		t.Errorf("stored = %+v ok=%v", stored, ok)
	}
}

func TestNonZeroExitCode(t *testing.T) {
	m, _ := newPair(t, 1, resources.New(1, 256, 10))
	id := m.Submit("exit 3", "test", resources.New(1, 1, 1))
	waitFor(t, func() bool { st, _ := m.Task(id); return st.Status == StatusDone }, "failing task")
	st, _ := m.Task(id)
	if st.ExitCode != 3 {
		t.Errorf("exit code = %d, want 3", st.ExitCode)
	}
}

func TestParallelAcrossWorkers(t *testing.T) {
	m, _ := newPair(t, 3, resources.New(1, 256, 10))
	n := 9
	for i := 0; i < n; i++ {
		m.Submit(fmt.Sprintf("echo task%d", i), "batch", resources.New(1, 1, 1))
	}
	waitFor(t, func() bool { return m.Stats().Done == n }, "all tasks")
	// Tasks spread over all workers.
	seen := make(map[string]bool)
	for i := 1; i <= n; i++ {
		st, _ := m.Task(i)
		seen[st.WorkerID] = true
	}
	if len(seen) != 3 {
		t.Errorf("workers used = %v, want all 3", seen)
	}
}

func TestUnknownResourcesExclusive(t *testing.T) {
	m, _ := newPair(t, 1, resources.New(4, 4096, 100))
	// Two unknown tasks on one worker: the second must wait until the
	// first finishes even though the worker has 4 slots.
	a := m.Submit("sleep 0.3", "u", resources.Zero)
	b := m.Submit("echo second", "u", resources.Zero)
	waitFor(t, func() bool { st, _ := m.Task(a); return st.Status == StatusRunning }, "first dispatch")
	if st, _ := m.Task(b); st.Status != StatusWaiting {
		t.Errorf("second unknown task status = %v, want waiting (exclusive mode)", st.Status)
	}
	waitFor(t, func() bool { return m.Stats().Done == 2 }, "both done")
}

func TestKnownResourcesPack(t *testing.T) {
	m, _ := newPair(t, 1, resources.New(2, 2048, 100))
	a := m.Submit("sleep 0.3", "k", resources.New(1, 512, 1))
	b := m.Submit("sleep 0.3", "k", resources.New(1, 512, 1))
	waitFor(t, func() bool {
		sa, _ := m.Task(a)
		sb, _ := m.Task(b)
		return sa.Status == StatusRunning && sb.Status == StatusRunning
	}, "both running concurrently")
	waitFor(t, func() bool { return m.Stats().Done == 2 }, "both done")
}

func TestDrainFinishesRunningThenExits(t *testing.T) {
	m, ws := newPair(t, 1, resources.New(1, 256, 10))
	id := m.Submit("sleep 0.2 && echo done", "d", resources.New(1, 1, 1))
	waitFor(t, func() bool { st, _ := m.Task(id); return st.Status == StatusRunning }, "dispatch")
	if err := m.Drain("w1"); err != nil {
		t.Fatal(err)
	}
	if err := ws[0].Wait(); err != nil {
		t.Errorf("drained worker exit err = %v", err)
	}
	waitFor(t, func() bool { return m.Stats().Workers == 0 }, "worker removal")
	st, _ := m.Task(id)
	if st.Status != StatusDone || st.ExitCode != 0 {
		t.Errorf("task after drain = %+v", st)
	}
}

func TestDrainUnknownWorker(t *testing.T) {
	m, _ := newPair(t, 1, resources.New(1, 256, 10))
	if err := m.Drain("ghost"); err == nil {
		t.Error("drain of unknown worker should fail")
	}
}

func TestWorkerDisconnectRequeues(t *testing.T) {
	m, ws := newPair(t, 1, resources.New(1, 256, 10))
	id := m.Submit("sleep 5", "r", resources.New(1, 1, 1))
	waitFor(t, func() bool { st, _ := m.Task(id); return st.Status == StatusRunning }, "dispatch")
	ws[0].Close()
	waitFor(t, func() bool { st, _ := m.Task(id); return st.Status == StatusWaiting }, "requeue")
	// A fresh worker picks it up and completes it (short command now
	// replaced by requeued sleep; shorten by letting it run → use
	// timeout-free path with a quick worker).
	w2, err := Connect(m.Addr(), WorkerConfig{ID: "w2", Capacity: resources.New(1, 256, 10)})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	waitFor(t, func() bool { st, _ := m.Task(id); return st.Status == StatusRunning && st.WorkerID == "w2" }, "redispatch")
	st, _ := m.Task(id)
	if st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", st.Attempts)
	}
}

func TestTaskTimeout(t *testing.T) {
	m, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	w, err := Connect(m.Addr(), WorkerConfig{
		ID:          "w1",
		Capacity:    resources.New(1, 256, 10),
		TaskTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	id := m.Submit("sleep 10", "t", resources.New(1, 1, 1))
	waitFor(t, func() bool { st, _ := m.Task(id); return st.Status == StatusDone }, "timeout kill")
	st, _ := m.Task(id)
	if st.ExitCode == 0 {
		t.Errorf("timed-out task exit = %d, want non-zero", st.ExitCode)
	}
}

func TestRegisterValidation(t *testing.T) {
	if _, err := Connect("127.0.0.1:1", WorkerConfig{ID: "", Capacity: resources.Cores(1)}); err == nil {
		t.Error("empty ID should fail")
	}
	if _, err := Connect("127.0.0.1:1", WorkerConfig{ID: "x"}); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestDuplicateWorkerIDRejected(t *testing.T) {
	m, _ := newPair(t, 1, resources.New(1, 256, 10))
	// The master drops the duplicate without an ack, so the handshake
	// fails and the error surfaces at Connect.
	w2, err := Connect(m.Addr(), WorkerConfig{
		ID:               "w1",
		Capacity:         resources.New(1, 256, 10),
		HandshakeTimeout: 500 * time.Millisecond,
	})
	if err == nil {
		w2.Close()
		t.Error("duplicate worker should be rejected during the handshake")
	}
	if got := m.Stats().Workers; got != 1 {
		t.Errorf("workers = %d, want 1", got)
	}
}

func TestMasterCloseIdempotent(t *testing.T) {
	m, _ := newPair(t, 1, resources.New(1, 256, 10))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestSubmitBeforeWorkers(t *testing.T) {
	m, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	id := m.Submit("echo queued", "q", resources.New(1, 1, 1))
	if st, _ := m.Task(id); st.Status != StatusWaiting {
		t.Fatalf("status = %v", st.Status)
	}
	w, err := Connect(m.Addr(), WorkerConfig{ID: "late", Capacity: resources.New(1, 256, 10)})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	waitFor(t, func() bool { st, _ := m.Task(id); return st.Status == StatusDone }, "late-worker pickup")
}

func TestHeartbeatKeepsWorkerAlive(t *testing.T) {
	m, err := ListenConfig("127.0.0.1:0", MasterConfig{HeartbeatTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	w, err := Connect(m.Addr(), WorkerConfig{
		ID:                "alive",
		Capacity:          resources.New(1, 256, 10),
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	waitFor(t, func() bool { return m.Stats().Workers == 1 }, "registration")
	time.Sleep(time.Second) // several timeout windows
	if got := m.Stats().Workers; got != 1 {
		t.Errorf("workers = %d after heartbeat windows, want 1", got)
	}
}

func TestSilentWorkerReaped(t *testing.T) {
	m, err := ListenConfig("127.0.0.1:0", MasterConfig{HeartbeatTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	w, err := Connect(m.Addr(), WorkerConfig{
		ID:                "silent",
		Capacity:          resources.New(1, 256, 10),
		HeartbeatInterval: -1, // disabled: looks dead to the master
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	id := m.Submit("sleep 30", "r", resources.New(1, 1, 1))
	waitFor(t, func() bool { st, _ := m.Task(id); return st.Status == StatusRunning }, "dispatch")
	// The master must reap the silent worker and requeue the task.
	waitFor(t, func() bool { return m.Stats().Workers == 0 }, "reaping")
	waitFor(t, func() bool { st, _ := m.Task(id); return st.Status == StatusWaiting }, "requeue")
}

func TestMasterSurvivesGarbageConnection(t *testing.T) {
	m, _ := newPair(t, 1, resources.New(1, 256, 10))
	// A client that speaks garbage must be dropped without affecting
	// the registered worker.
	raw, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("GET / HTTP/1.1\r\n\r\n{not json}\n"))
	raw.Close()
	// Another connection registering with a bogus frame type.
	raw2, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw2.Write([]byte(`{"type":"result","task_id":999}` + "\n"))
	raw2.Close()
	time.Sleep(50 * time.Millisecond)
	id := m.Submit("echo alive", "g", resources.New(1, 1, 1))
	waitFor(t, func() bool { st, _ := m.Task(id); return st.Status == StatusDone }, "master still serving")
	if got := m.Stats().Workers; got != 1 {
		t.Errorf("workers = %d, want the real one only", got)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	m, _ := newPair(t, 1, resources.New(1, 256, 10))
	raw, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// A 2 MiB line exceeds the frame cap; the master must drop the
	// connection rather than buffer unboundedly.
	huge := make([]byte, 2<<20)
	for i := range huge {
		huge[i] = 'x'
	}
	raw.Write([]byte(`{"type":"register","worker_id":"`))
	raw.Write(huge)
	raw.Write([]byte(`"}` + "\n"))
	buf := make([]byte, 1)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Error("expected the master to close the oversized connection")
	}
	if got := m.Stats().Workers; got != 1 {
		t.Errorf("workers = %d", got)
	}
}

func TestSnapshotsExposeDispatchState(t *testing.T) {
	m, _ := newPair(t, 1, resources.New(2, 2048, 100))
	a := m.Submit("sleep 0.5", "s", resources.New(1, 256, 1))
	m.Submit("sleep 0.5", "s", resources.New(1, 256, 1))
	c := m.Submit("sleep 0.5", "s", resources.New(1, 256, 1)) // third waits: 2 slots
	waitFor(t, func() bool { return len(m.RunningTasks()) == 2 }, "two running")
	running := m.RunningTasks()
	if running[0].ID != a || running[0].StartedAt.IsZero() {
		t.Errorf("running[0] = %+v", running[0])
	}
	if running[0].Allocated.MilliCPU != 1000 {
		t.Errorf("allocated = %v", running[0].Allocated)
	}
	wt := m.WaitingTasks()
	if len(wt) != 1 || wt[0].ID != c {
		t.Errorf("waiting = %+v", wt)
	}
	det := m.WorkerDetails()
	if len(det) != 1 || det[0].Running != 2 || det[0].Capacity.MilliCPU != 2000 {
		t.Errorf("details = %+v", det)
	}
	waitFor(t, func() bool { return m.Stats().Done == 3 }, "all done")
}

func TestMeasuredCPUReported(t *testing.T) {
	m, _ := newPair(t, 1, resources.New(2, 1024, 100))
	// A CPU-busy loop: rusage must show substantial utilization.
	busy := m.Submit("i=0; while [ $i -lt 200000 ]; do i=$((i+1)); done", "busy", resources.New(1, 64, 1))
	idle := m.Submit("sleep 0.4", "idle", resources.New(1, 64, 1))
	waitFor(t, func() bool { return m.Stats().Done == 2 }, "both done")
	b, _ := m.Task(busy)
	if b.MeasuredCPUMilli < 300 {
		t.Errorf("busy task measured %dm CPU, want substantial", b.MeasuredCPUMilli)
	}
	i, _ := m.Task(idle)
	if i.MeasuredCPUMilli > 300 {
		t.Errorf("idle task measured %dm CPU, want near zero", i.MeasuredCPUMilli)
	}
}

func TestWirePriorityOrdering(t *testing.T) {
	m, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Queue three tasks before any worker exists; the high-priority
	// one must dispatch first.
	low1 := m.Submit("echo low1", "p", resources.New(1, 1, 1))
	low2 := m.Submit("echo low2", "p", resources.New(1, 1, 1))
	high := m.SubmitPriority("echo high", "p", resources.New(1, 1, 1), 5)
	var mu sync.Mutex
	var order []int
	m.OnComplete(func(r Result) {
		mu.Lock()
		order = append(order, r.Task.ID)
		mu.Unlock()
	})
	w, err := Connect(m.Addr(), WorkerConfig{ID: "w1", Capacity: resources.New(1, 256, 10)})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	waitFor(t, func() bool { return m.Stats().Done == 3 }, "all done")
	mu.Lock()
	defer mu.Unlock()
	if order[0] != high || order[1] != low1 || order[2] != low2 {
		t.Errorf("order = %v, want [%d %d %d]", order, high, low1, low2)
	}
}
