package wire

import (
	"testing"
	"time"
)

func TestBackoffDoublesWithinJitterBounds(t *testing.T) {
	bo := NewBackoff(time.Second, 8*time.Second)
	want := []time.Duration{
		time.Second, 2 * time.Second, 4 * time.Second,
		8 * time.Second, 8 * time.Second, // capped
	}
	for i, base := range want {
		d := bo.Next()
		lo := time.Duration(float64(base) * (1 - bo.Jitter))
		hi := time.Duration(float64(base) * (1 + bo.Jitter))
		if d < lo || d > hi {
			t.Errorf("delay %d = %v, want within [%v, %v]", i, d, lo, hi)
		}
	}
	if got := bo.Attempts(); got != len(want) {
		t.Errorf("attempts = %d, want %d", got, len(want))
	}
	bo.Reset()
	if d := bo.Next(); d > time.Duration(float64(time.Second)*(1+bo.Jitter)) {
		t.Errorf("after reset delay = %v, want ~base", d)
	}
}

func TestBackoffDefaults(t *testing.T) {
	bo := NewBackoff(0, 0)
	if bo.Base <= 0 || bo.Max < bo.Base {
		t.Errorf("defaults not applied: base=%v max=%v", bo.Base, bo.Max)
	}
}
