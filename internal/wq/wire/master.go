package wire

import (
	"cmp"
	"fmt"
	"net"
	"slices"
	"sync"
	"time"

	"hta/internal/resources"
)

// TaskStatus is a task's lifecycle state at the TCP master.
type TaskStatus int

// Task states.
const (
	StatusWaiting TaskStatus = iota
	StatusRunning
	StatusDone
)

// Task is the master-side record of a submitted command.
type Task struct {
	ID        int
	Command   string
	Category  string
	Priority  int
	Resources resources.Vector // zero = unknown

	Status   TaskStatus
	WorkerID string
	Attempts int
	// StartedAt is the last dispatch time (zero while waiting).
	StartedAt time.Time
	// Allocated is the resource amount held on the worker during the
	// current/last run.
	Allocated resources.Vector

	ExitCode int
	Output   string
	Err      string
	Wall     time.Duration
	// MeasuredCPUMilli is the worker-reported average CPU use.
	MeasuredCPUMilli int64
}

// Result is delivered to completion subscribers.
type Result struct{ Task Task }

// Stats is a snapshot of the master's state.
type Stats struct {
	Waiting, Running, Done int
	Workers                int
}

type workerConn struct {
	id       string
	capacity resources.Vector
	pool     *resources.Pool
	conn     *conn
	running  map[int]resources.Vector // task -> allocation
	draining bool
	lastSeen time.Time
}

// MasterConfig tunes the TCP master.
type MasterConfig struct {
	// HeartbeatTimeout disconnects a worker whose last frame
	// (heartbeat or result) is older than this; its tasks requeue.
	// 0 disables liveness checking.
	HeartbeatTimeout time.Duration
	// ReattachGrace parks a disconnected worker's running tasks for
	// this long before requeueing them: if the worker reconnects
	// within the grace window still reporting the attempts in flight,
	// they are rescued (resume as the same attempt) instead of being
	// rescheduled. 0 requeues immediately (the pre-recovery
	// behaviour).
	ReattachGrace time.Duration
	// RegisterTimeout bounds how long an accepted connection may take
	// to deliver its register frame. A half-written or silent peer is
	// invisible to the heartbeat reaper (it is not a worker yet), so
	// without this bound it pins a serve goroutine forever. 0 takes
	// the 10 s default; negative disables.
	RegisterTimeout time.Duration
	// ReadTimeout bounds each post-registration frame read. 0
	// disables — the heartbeat reaper handles registered-worker
	// liveness. Set it only below the workers' heartbeat interval at
	// your peril.
	ReadTimeout time.Duration
}

// registerTimeout resolves the config's registration deadline.
func (c MasterConfig) registerTimeout() time.Duration {
	if c.RegisterTimeout < 0 {
		return 0
	}
	if c.RegisterTimeout == 0 {
		return 10 * time.Second
	}
	return c.RegisterTimeout
}

// parkedWorker holds a disconnected worker's in-flight allocations
// while the reattach grace window runs.
type parkedWorker struct {
	tasks map[int]resources.Vector
	timer *time.Timer
}

// Master is a TCP Work Queue master.
type Master struct {
	ln  net.Listener
	cfg MasterConfig

	mu         sync.Mutex
	nextID     int
	tasks      map[int]*Task
	waiting    []int
	workers    map[string]*workerConn
	order      []string
	parked     map[string]*parkedWorker
	rescued    int
	fenced     int
	onComplete []func(Result)
	closed     bool
	done       chan struct{}
	wg         sync.WaitGroup
}

// Listen starts a master on addr (e.g. "127.0.0.1:9123"; use port 0
// for an ephemeral port).
func Listen(addr string) (*Master, error) { return ListenConfig(addr, MasterConfig{}) }

// ListenConfig starts a master with explicit configuration.
func ListenConfig(addr string, cfg MasterConfig) (*Master, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	m := &Master{
		ln:      ln,
		cfg:     cfg,
		tasks:   make(map[int]*Task),
		workers: make(map[string]*workerConn),
		parked:  make(map[string]*parkedWorker),
		done:    make(chan struct{}),
	}
	m.wg.Add(1)
	go m.acceptLoop()
	if cfg.HeartbeatTimeout > 0 {
		m.wg.Add(1)
		go m.reaperLoop()
	}
	return m, nil
}

// reaperLoop disconnects workers that stopped sending frames.
func (m *Master) reaperLoop() {
	defer m.wg.Done()
	interval := m.cfg.HeartbeatTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-m.cfg.HeartbeatTimeout)
		m.mu.Lock()
		var dead []*workerConn
		for _, w := range m.workers {
			if w.lastSeen.Before(cutoff) {
				dead = append(dead, w)
			}
		}
		m.mu.Unlock()
		for _, w := range dead {
			// Closing the connection makes the reader goroutine run
			// the normal disconnect path (requeue + removal).
			_ = w.conn.close()
		}
	}
}

// Addr returns the listening address.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Close shuts the master down: the listener stops and all worker
// connections are closed.
func (m *Master) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.done)
	conns := make([]*workerConn, 0, len(m.workers))
	for _, w := range m.workers {
		conns = append(conns, w)
	}
	for _, p := range m.parked {
		p.timer.Stop()
	}
	m.parked = make(map[string]*parkedWorker)
	m.mu.Unlock()
	err := m.ln.Close()
	for _, w := range conns {
		_ = w.conn.close()
	}
	m.wg.Wait()
	return err
}

// OnComplete subscribes to task completions. Callbacks run on
// connection-reader goroutines; they must be quick and thread-safe.
func (m *Master) OnComplete(fn func(Result)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onComplete = append(m.onComplete, fn)
}

// Submit enqueues a shell command and returns its task ID.
func (m *Master) Submit(command, category string, req resources.Vector) int {
	return m.SubmitPriority(command, category, req, 0)
}

// SubmitPriority enqueues a command with a dispatch priority
// (higher first; ties keep submission order).
func (m *Master) SubmitPriority(command, category string, req resources.Vector, priority int) int {
	m.mu.Lock()
	m.nextID++
	t := &Task{ID: m.nextID, Command: command, Category: category, Resources: req, Priority: priority}
	m.tasks[t.ID] = t
	m.waiting = append(m.waiting, t.ID)
	m.mu.Unlock()
	m.dispatch()
	return t.ID
}

// Task returns a copy of the task.
func (m *Master) Task(id int) (Task, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tasks[id]
	if !ok {
		return Task{}, false
	}
	return *t, true
}

// Stats returns a snapshot.
func (m *Master) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{Waiting: len(m.waiting), Workers: len(m.workers)}
	for _, t := range m.tasks {
		switch t.Status {
		case StatusRunning:
			s.Running++
		case StatusDone:
			s.Done++
		}
	}
	return s
}

// Workers returns connected worker IDs in join order.
func (m *Master) Workers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// WorkerDetail describes one connected worker.
type WorkerDetail struct {
	ID       string
	Capacity resources.Vector
	Running  int
	Draining bool
}

// WorkerDetails returns per-worker state in join order.
func (m *Master) WorkerDetails() []WorkerDetail {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WorkerDetail, 0, len(m.order))
	for _, id := range m.order {
		w := m.workers[id]
		out = append(out, WorkerDetail{
			ID:       id,
			Capacity: w.capacity,
			Running:  len(w.running),
			Draining: w.draining,
		})
	}
	return out
}

// WaitingTasks returns copies of the queued tasks in queue order.
func (m *Master) WaitingTasks() []Task {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Task, 0, len(m.waiting))
	for _, id := range m.waiting {
		out = append(out, *m.tasks[id])
	}
	return out
}

// RunningTasks returns copies of all dispatched tasks, ordered by ID.
func (m *Master) RunningTasks() []Task {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Task
	for _, t := range m.tasks {
		if t.Status == StatusRunning {
			out = append(out, *t)
		}
	}
	slices.SortFunc(out, func(a, b Task) int { return cmp.Compare(a.ID, b.ID) })
	return out
}

// Drain asks a worker to finish its running tasks and exit; no new
// tasks are dispatched to it.
func (m *Master) Drain(workerID string) error {
	m.mu.Lock()
	w, ok := m.workers[workerID]
	if ok {
		w.draining = true
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("wire: worker %q not connected", workerID)
	}
	return w.conn.write(Frame{Type: TypeDrain})
}

func (m *Master) acceptLoop() {
	defer m.wg.Done()
	for {
		raw, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.wg.Add(1)
		go m.serve(newConn(raw))
	}
}

func (m *Master) serve(c *conn) {
	defer m.wg.Done()
	c.setReadTimeout(m.cfg.registerTimeout())
	reg, err := c.read()
	if err != nil || reg.Type != TypeRegister || reg.WorkerID == "" {
		_ = c.close()
		return
	}
	c.setReadTimeout(m.cfg.ReadTimeout)
	capacity := resources.Vector{MilliCPU: reg.Cores, MemoryMB: reg.MemoryMB, DiskMB: reg.DiskMB}
	if !capacity.AnyPositive() {
		_ = c.close()
		return
	}
	w := &workerConn{
		id:       reg.WorkerID,
		capacity: capacity,
		pool:     resources.NewPool(capacity),
		conn:     c,
		running:  make(map[int]resources.Vector),
		lastSeen: time.Now(),
	}
	m.mu.Lock()
	if _, dup := m.workers[w.id]; dup || m.closed {
		m.mu.Unlock()
		_ = c.close()
		return
	}
	// Reconnect: rescue the attempts this worker still has in flight
	// and the master still has parked for it. Everything else the
	// worker reports is superseded and fenced off via drop_ids.
	reported := make(map[int]bool, len(reg.InflightIDs))
	for _, id := range reg.InflightIDs {
		reported[id] = true
	}
	if p, ok := m.parked[w.id]; ok {
		delete(m.parked, w.id)
		p.timer.Stop()
		var requeued []int
		ids := make([]int, 0, len(p.tasks))
		for id := range p.tasks {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		for _, id := range ids {
			t := m.tasks[id]
			if reported[id] && t != nil && t.Status == StatusRunning && t.WorkerID == w.id {
				_ = w.pool.Acquire(p.tasks[id])
				w.running[id] = p.tasks[id]
				m.rescued++
				continue
			}
			if t != nil && t.Status == StatusRunning && t.WorkerID == w.id {
				t.Status = StatusWaiting
				t.WorkerID = ""
				t.Allocated = resources.Zero
				requeued = append(requeued, id)
			}
		}
		m.waiting = append(requeued, m.waiting...)
	}
	var drop []int
	for _, id := range reg.InflightIDs {
		if _, rescued := w.running[id]; !rescued {
			drop = append(drop, id)
			m.fenced++
		}
	}
	slices.Sort(drop)
	m.workers[w.id] = w
	m.order = append(m.order, w.id)
	m.mu.Unlock()
	if err := c.write(Frame{Type: TypeRegisterAck, WorkerID: w.id, DropIDs: drop}); err != nil {
		m.disconnect(w)
		return
	}
	m.dispatch()

	for {
		f, err := c.read()
		if err != nil {
			break
		}
		m.mu.Lock()
		w.lastSeen = time.Now()
		m.mu.Unlock()
		if f.Type == TypeResult {
			m.handleResult(w, f)
		}
	}
	m.disconnect(w)
}

func (m *Master) handleResult(w *workerConn, f Frame) {
	m.mu.Lock()
	t, ok := m.tasks[f.TaskID]
	if !ok || t.Status != StatusRunning || t.WorkerID != w.id {
		m.mu.Unlock()
		return
	}
	alloc := w.running[t.ID]
	delete(w.running, t.ID)
	w.pool.Release(alloc)
	t.Status = StatusDone
	t.ExitCode = f.ExitCode
	t.Output = f.Output
	t.Err = f.Error
	t.Wall = time.Duration(f.WallMS) * time.Millisecond
	t.MeasuredCPUMilli = f.CPUMilli
	cbs := make([]func(Result), len(m.onComplete))
	copy(cbs, m.onComplete)
	cp := *t
	m.mu.Unlock()
	for _, fn := range cbs {
		fn(Result{Task: cp})
	}
	m.dispatch()
}

// disconnect removes a worker whose connection ended. With a reattach
// grace configured, its running tasks are parked first — still
// assigned, awaiting the worker's reconnect — and only requeued when
// the grace window expires; otherwise they requeue immediately.
func (m *Master) disconnect(w *workerConn) {
	_ = w.conn.close()
	m.mu.Lock()
	if m.workers[w.id] != w {
		m.mu.Unlock()
		return
	}
	delete(m.workers, w.id)
	for i, id := range m.order {
		if id == w.id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	if m.cfg.ReattachGrace > 0 && len(w.running) > 0 && !w.draining && !m.closed {
		id := w.id
		p := &parkedWorker{tasks: make(map[int]resources.Vector, len(w.running))}
		for tid, alloc := range w.running {
			p.tasks[tid] = alloc
		}
		p.timer = time.AfterFunc(m.cfg.ReattachGrace, func() { m.expireParked(id, p) })
		m.parked[id] = p
		m.mu.Unlock()
		return
	}
	var requeued []int
	for id := range w.running {
		t := m.tasks[id]
		t.Status = StatusWaiting
		t.WorkerID = ""
		t.Allocated = resources.Zero
		requeued = append(requeued, id)
	}
	slices.Sort(requeued)
	m.waiting = append(requeued, m.waiting...)
	m.mu.Unlock()
	m.dispatch()
}

// expireParked requeues a parked worker's tasks after the reattach
// grace window passed without a reconnect.
func (m *Master) expireParked(workerID string, p *parkedWorker) {
	m.mu.Lock()
	if m.parked[workerID] != p {
		m.mu.Unlock()
		return // the worker reconnected (or Close cleared the park)
	}
	delete(m.parked, workerID)
	var requeued []int
	for id := range p.tasks {
		t := m.tasks[id]
		if t == nil || t.Status != StatusRunning || t.WorkerID != workerID {
			continue
		}
		t.Status = StatusWaiting
		t.WorkerID = ""
		t.Allocated = resources.Zero
		requeued = append(requeued, id)
	}
	slices.Sort(requeued)
	m.waiting = append(requeued, m.waiting...)
	m.mu.Unlock()
	m.dispatch()
}

// RescuedCount returns how many in-flight attempts reconnecting
// workers resumed instead of being rescheduled.
func (m *Master) RescuedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rescued
}

// FencedCount returns how many reported in-flight attempts were
// rejected at reconnect (superseded while the worker was away).
func (m *Master) FencedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fenced
}

// dispatch assigns waiting tasks to workers: known requirements
// first-fit, unknown requirements exclusively on an idle worker.
func (m *Master) dispatch() {
	type send struct {
		w *workerConn
		f Frame
	}
	var sends []send
	m.mu.Lock()
	order := append([]int(nil), m.waiting...)
	slices.SortStableFunc(order, func(a, b int) int {
		return cmp.Compare(m.tasks[b].Priority, m.tasks[a].Priority)
	})
	placed := make(map[int]bool)
	for _, id := range order {
		t := m.tasks[id]
		var target *workerConn
		var alloc resources.Vector
		if !t.Resources.IsZero() {
			for _, wid := range m.order {
				w := m.workers[wid]
				if !w.draining && w.pool.CanFit(t.Resources) {
					target, alloc = w, t.Resources
					break
				}
			}
		} else {
			for _, wid := range m.order {
				w := m.workers[wid]
				if !w.draining && w.pool.Used().IsZero() && len(w.running) == 0 {
					target, alloc = w, w.pool.Capacity()
					break
				}
			}
		}
		if target == nil {
			continue
		}
		placed[id] = true
		_ = target.pool.Acquire(alloc)
		target.running[t.ID] = alloc
		t.Status = StatusRunning
		t.WorkerID = target.id
		t.Attempts++
		t.StartedAt = time.Now()
		t.Allocated = alloc
		sends = append(sends, send{target, Frame{
			Type:        TypeTask,
			TaskID:      t.ID,
			Command:     t.Command,
			Category:    t.Category,
			Priority:    t.Priority,
			ReqCores:    t.Resources.MilliCPU,
			ReqMemoryMB: t.Resources.MemoryMB,
		}})
	}
	still := m.waiting[:0]
	for _, id := range m.waiting {
		if !placed[id] {
			still = append(still, id)
		}
	}
	m.waiting = still
	m.mu.Unlock()
	for _, s := range sends {
		if err := s.w.conn.write(s.f); err != nil {
			// Reader goroutine will notice the broken connection and
			// requeue via disconnect.
			continue
		}
	}
}
