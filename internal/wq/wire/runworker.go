package wire

import (
	"time"
)

// RunOptions tunes RunWorker's self-healing connection loop.
type RunOptions struct {
	// ReconnectWindow keeps retrying the master for this long after a
	// connect failure or lost connection, measured from the last
	// healthy moment (0 = exit on the first failure).
	ReconnectWindow time.Duration
	// Backoff paces the retries (default NewBackoff(1s, 30s)).
	Backoff *Backoff
	// Logf receives progress lines (default: silent).
	Logf func(format string, args ...any)
	// Sleep is the delay function, injectable for tests (default
	// time.Sleep).
	Sleep func(time.Duration)
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Backoff == nil {
		o.Backoff = NewBackoff(time.Second, 30*time.Second)
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// RunWorker runs a worker against the master at addr until it drains
// cleanly (returns nil) or the reconnect window expires (returns the
// last connection error). A master restart or transient partition
// must not kill the worker fleet, so lost connections are retried
// with paced backoff; in-flight commands keep executing across the
// gap and are reported to the master on reconnect, which rescues the
// attempts it still wants.
//
// The backoff resets only after a *successful handshake* — the
// master's register_ack — never on a successful dial alone. A
// crash-looping master whose listener accepts and immediately dies
// would otherwise reset the sequence on every probe, hammering it
// with base-interval retries exactly when it needs room to recover.
func RunWorker(addr string, cfg WorkerConfig, opts RunOptions) error {
	w, err := NewWorker(cfg)
	if err != nil {
		return err
	}
	opts = opts.withDefaults()
	lastHealthy := opts.Now()
	for {
		if err := w.Connect(addr); err != nil {
			if opts.ReconnectWindow <= 0 || opts.Now().Sub(lastHealthy) > opts.ReconnectWindow {
				return err
			}
			d := opts.Backoff.Next()
			opts.Logf("worker %s: connect %s failed (%v); retrying in %v",
				cfg.ID, addr, err, d.Round(time.Millisecond))
			opts.Sleep(d)
			continue
		}
		opts.Backoff.Reset() // handshake acked: the master is really back
		opts.Logf("worker %s connected to %s", cfg.ID, addr)
		err := w.Wait()
		lastHealthy = opts.Now()
		if err == nil {
			return nil // clean drain
		}
		if opts.ReconnectWindow <= 0 {
			return err
		}
		d := opts.Backoff.Next()
		opts.Logf("worker %s: connection lost (%v); reconnecting in %v",
			cfg.ID, err, d.Round(time.Millisecond))
		opts.Sleep(d)
	}
}
