package wire

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hta/internal/resources"
)

// These tests stress the TCP layer's failure paths under the race
// detector: abrupt worker loss racing dispatch, the heartbeat reaper
// racing in-flight result frames, and drains of workers that still
// hold running tasks. They complement internal/chaos, which covers
// the same fault classes in the simulated world.

// TestChaosWireConcurrentDisconnects closes half the fleet abruptly —
// all at once, mid-dispatch — while replacements join and tasks keep
// completing. Every submitted task must still finish exactly once per
// final attempt, with no lost or stuck entries.
func TestChaosWireConcurrentDisconnects(t *testing.T) {
	m, ws := newPair(t, 6, resources.New(1, 256, 10))
	const n = 24
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, m.Submit("sleep 0.05; echo ok", "c", resources.New(1, 1, 1)))
	}
	// Yank three workers concurrently while their tasks are in flight.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			time.Sleep(20 * time.Millisecond)
			w.Close()
		}(ws[i])
	}
	// Replacements join while the disconnect storm is underway.
	for i := 0; i < 3; i++ {
		w, err := Connect(m.Addr(), WorkerConfig{
			ID:       fmt.Sprintf("spare%d", i),
			Capacity: resources.New(1, 256, 10),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
	}
	wg.Wait()
	waitFor(t, func() bool { return m.Stats().Done == n }, "all tasks after disconnect storm")
	st := m.Stats()
	if st.Waiting != 0 || st.Running != 0 {
		t.Errorf("stats after storm = %+v, want everything done", st)
	}
	for _, id := range ids {
		task, ok := m.Task(id)
		if !ok || task.Status != StatusDone || task.Attempts < 1 {
			t.Errorf("task %d = %+v, want done", id, task)
		}
	}
}

// TestChaosWireReaperRacesResultFrames pits the heartbeat reaper
// against result delivery: silent workers only reset their liveness
// clock when a result frame lands, so tasks that straddle the timeout
// get their connection closed concurrently with the result write.
// Either outcome is legal — the result arrived (done) or the worker
// died first (requeue) — but the master must stay consistent and a
// healthy worker must be able to finish everything that requeued.
func TestChaosWireReaperRacesResultFrames(t *testing.T) {
	m, err := ListenConfig("127.0.0.1:0", MasterConfig{HeartbeatTimeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Silent workers: no heartbeats, so only result frames keep them
	// alive. Task wall times sit right at the reaper boundary.
	for i := 0; i < 3; i++ {
		w, err := Connect(m.Addr(), WorkerConfig{
			ID:                fmt.Sprintf("silent%d", i),
			Capacity:          resources.New(1, 256, 10),
			HeartbeatInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
	}
	const n = 12
	for i := 0; i < n; i++ {
		m.Submit("sleep 0.08; echo raced", "r", resources.New(1, 1, 1))
	}
	// A heartbeating worker guarantees requeued tasks eventually land.
	safe, err := Connect(m.Addr(), WorkerConfig{
		ID:                "healthy",
		Capacity:          resources.New(2, 512, 20),
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer safe.Close()
	waitFor(t, func() bool { return m.Stats().Done == n }, "all tasks despite reaping")
	st := m.Stats()
	if st.Waiting != 0 || st.Running != 0 {
		t.Errorf("stats = %+v, want no stragglers", st)
	}
	// The silent workers must all be reaped by now; only the
	// heartbeating one survives.
	waitFor(t, func() bool { return m.Stats().Workers == 1 }, "silent workers reaped")
}

// TestChaosWireDrainWithInFlightTransfers drains a worker that holds
// running tasks, re-drains it (idempotent), then kills it outright
// while the drain is still in progress. The in-flight tasks must
// requeue and complete on a replacement with Attempts == 2.
func TestChaosWireDrainWithInFlightTransfers(t *testing.T) {
	m, ws := newPair(t, 1, resources.New(2, 2048, 100))
	a := m.Submit("sleep 1; echo a", "d", resources.New(1, 512, 1))
	b := m.Submit("sleep 1; echo b", "d", resources.New(1, 512, 1))
	waitFor(t, func() bool { return len(m.RunningTasks()) == 2 }, "both in flight")
	if err := m.Drain("w1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		det := m.WorkerDetails()
		return len(det) == 1 && det[0].Draining
	}, "draining flag")
	// Draining a draining worker is a no-op, not an error.
	if err := m.Drain("w1"); err != nil {
		t.Errorf("second drain: %v", err)
	}
	// No new work lands on a draining worker.
	c := m.Submit("echo c", "d", resources.New(1, 512, 1))
	if st, _ := m.Task(c); st.Status != StatusWaiting {
		t.Errorf("task %d dispatched to draining worker: %+v", c, st)
	}
	// Kill the draining worker with its transfers still in flight.
	ws[0].Close()
	waitFor(t, func() bool { return m.Stats().Workers == 0 }, "killed worker removed")
	for _, id := range []int{a, b} {
		if st, _ := m.Task(id); st.Status != StatusWaiting {
			t.Errorf("task %d after kill = %+v, want requeued", id, st)
		}
	}
	// A replacement picks the requeued transfers up and finishes them.
	w2, err := Connect(m.Addr(), WorkerConfig{ID: "w2", Capacity: resources.New(3, 4096, 100)})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	waitFor(t, func() bool {
		sa, _ := m.Task(a)
		sb, _ := m.Task(b)
		return sa.Status == StatusRunning && sb.Status == StatusRunning
	}, "redispatch")
	for _, id := range []int{a, b} {
		if st, _ := m.Task(id); st.Attempts != 2 {
			t.Errorf("task %d attempts = %d, want 2", id, st.Attempts)
		}
	}
	waitFor(t, func() bool { return m.Stats().Done == 3 }, "all done on replacement")
}

// TestChaosWireSubmitStormDuringDisconnects floods the master with
// submissions from several goroutines while workers churn, checking
// that the dispatch path holds up under concurrent mutation.
func TestChaosWireSubmitStormDuringDisconnects(t *testing.T) {
	m, ws := newPair(t, 4, resources.New(1, 256, 10))
	const perG, goroutines = 8, 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Submit(fmt.Sprintf("echo g%d-%d", g, i), "s", resources.New(1, 1, 1))
			}
		}(g)
	}
	// Churn two workers while the storm runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ws[0].Close()
		ws[1].Close()
		for i := 0; i < 2; i++ {
			w, err := Connect(m.Addr(), WorkerConfig{
				ID:       fmt.Sprintf("churn%d", i),
				Capacity: resources.New(1, 256, 10),
			})
			if err != nil {
				t.Error(err)
				return
			}
			t.Cleanup(func() { w.Close() })
		}
	}()
	wg.Wait()
	waitFor(t, func() bool { return m.Stats().Done == perG*goroutines }, "storm drained")
}
