package wire

import (
	"context"
	"fmt"
	"net"
	"os/exec"
	"sync"
	"time"

	"hta/internal/resources"
)

// WorkerConfig configures a TCP worker.
type WorkerConfig struct {
	// ID is the worker's identity (required, unique per master).
	ID string
	// Capacity is the advertised resource capacity (required).
	Capacity resources.Vector
	// Shell is the interpreter for task commands (default /bin/sh).
	Shell string
	// TaskTimeout kills commands that run longer (0 = no limit).
	TaskTimeout time.Duration
	// HeartbeatInterval is the liveness-frame period (default 10 s;
	// negative disables heartbeats).
	HeartbeatInterval time.Duration
}

// Worker executes task commands received from a wire.Master.
type Worker struct {
	cfg  WorkerConfig
	conn *conn

	mu       sync.Mutex
	running  map[int]context.CancelFunc
	draining bool
	done     chan struct{}
	wg       sync.WaitGroup
	err      error
}

// Connect dials the master and registers. The worker starts serving
// immediately; Wait blocks until it exits (drain or disconnect).
func Connect(addr string, cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("wire: worker needs an ID")
	}
	if !cfg.Capacity.AnyPositive() {
		return nil, fmt.Errorf("wire: worker %q needs a capacity", cfg.ID)
	}
	if cfg.Shell == "" {
		cfg.Shell = "/bin/sh"
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 10 * time.Second
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial master: %w", err)
	}
	w := &Worker{
		cfg:     cfg,
		conn:    newConn(raw),
		running: make(map[int]context.CancelFunc),
		done:    make(chan struct{}),
	}
	if err := w.conn.write(Frame{
		Type:     TypeRegister,
		WorkerID: cfg.ID,
		Cores:    cfg.Capacity.MilliCPU,
		MemoryMB: cfg.Capacity.MemoryMB,
		DiskMB:   cfg.Capacity.DiskMB,
	}); err != nil {
		_ = w.conn.close()
		return nil, err
	}
	go w.loop()
	if cfg.HeartbeatInterval > 0 {
		go w.heartbeatLoop(cfg.HeartbeatInterval)
	}
	return w, nil
}

func (w *Worker) heartbeatLoop(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-tick.C:
			if err := w.conn.write(Frame{Type: TypeHeartbeat}); err != nil {
				return
			}
		}
	}
}

// Wait blocks until the worker exits and returns its terminal error
// (nil after a clean drain).
func (w *Worker) Wait() error {
	<-w.done
	return w.err
}

// Close disconnects immediately, cancelling running commands.
func (w *Worker) Close() error {
	w.mu.Lock()
	for _, cancel := range w.running {
		cancel()
	}
	w.mu.Unlock()
	return w.conn.close()
}

func (w *Worker) loop() {
	defer close(w.done)
	for {
		f, err := w.conn.read()
		if err != nil {
			w.mu.Lock()
			draining := w.draining && len(w.running) == 0
			w.mu.Unlock()
			if !draining {
				w.err = err
			}
			w.wg.Wait()
			_ = w.conn.close()
			return
		}
		switch f.Type {
		case TypeTask:
			w.startTask(f)
		case TypeDrain:
			w.mu.Lock()
			w.draining = true
			idle := len(w.running) == 0
			w.mu.Unlock()
			if idle {
				w.wg.Wait()
				_ = w.conn.close()
				return
			}
		}
	}
}

func (w *Worker) startTask(f Frame) {
	ctx, cancel := context.WithCancel(context.Background())
	if w.cfg.TaskTimeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), w.cfg.TaskTimeout)
	}
	w.mu.Lock()
	w.running[f.TaskID] = cancel
	w.mu.Unlock()
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer cancel()
		res := w.execute(ctx, f)
		w.mu.Lock()
		delete(w.running, f.TaskID)
		drainingIdle := w.draining && len(w.running) == 0
		w.mu.Unlock()
		_ = w.conn.write(res)
		if drainingIdle {
			_ = w.conn.close()
		}
	}()
}

func (w *Worker) execute(ctx context.Context, f Frame) Frame {
	start := time.Now()
	cmd := exec.CommandContext(ctx, w.cfg.Shell, "-c", f.Command)
	// Without a wait delay, a killed shell whose children still hold
	// the output pipe would block CombinedOutput forever.
	cmd.WaitDelay = time.Second
	out, err := cmd.CombinedOutput()
	wall := time.Since(start)
	res := Frame{
		Type:   TypeResult,
		TaskID: f.TaskID,
		Output: truncate(string(out), 16*1024),
		WallMS: wall.Milliseconds(),
	}
	// Measured CPU: rusage user+system over wall time — the signal
	// the resource monitor aggregates per category.
	if cmd.ProcessState != nil && wall > 0 {
		cpu := cmd.ProcessState.UserTime() + cmd.ProcessState.SystemTime()
		res.CPUMilli = int64(float64(cpu) / float64(wall) * 1000)
	}
	if err != nil {
		if exitErr, ok := err.(*exec.ExitError); ok {
			res.ExitCode = exitErr.ExitCode()
		} else {
			res.ExitCode = -1
			res.Error = err.Error()
		}
	}
	return res
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
