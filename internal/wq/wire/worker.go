package wire

import (
	"context"
	"fmt"
	"net"
	"os/exec"
	"slices"
	"sync"
	"time"

	"hta/internal/resources"
)

// WorkerConfig configures a TCP worker.
type WorkerConfig struct {
	// ID is the worker's identity (required, unique per master).
	ID string
	// Capacity is the advertised resource capacity (required).
	Capacity resources.Vector
	// Shell is the interpreter for task commands (default /bin/sh).
	Shell string
	// TaskTimeout kills commands that run longer (0 = no limit).
	TaskTimeout time.Duration
	// HeartbeatInterval is the liveness-frame period (default 10 s;
	// negative disables heartbeats).
	HeartbeatInterval time.Duration
	// HandshakeTimeout bounds the wait for the master's register_ack
	// (default 5 s). A dial that succeeds but never acks counts as a
	// failed connection attempt.
	HandshakeTimeout time.Duration
}

// Worker executes task commands received from a wire.Master. A Worker
// outlives its TCP connection: when the connection drops, running
// commands keep executing and their results are buffered; a
// subsequent Connect re-registers with the still-running task IDs so
// the master can rescue the attempts instead of rescheduling them.
type Worker struct {
	cfg WorkerConfig

	mu       sync.Mutex
	conn     *conn         // current connection; nil while disconnected
	connDone chan struct{} // closed when the current connection's loop exits
	running  map[int]context.CancelFunc
	pending  []Frame // results not yet delivered to any master
	draining bool
	finished bool // clean drain: terminal
	err      error
	wg       sync.WaitGroup
}

// NewWorker validates the configuration and returns a disconnected
// worker; call Connect to register with a master.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("wire: worker needs an ID")
	}
	if !cfg.Capacity.AnyPositive() {
		return nil, fmt.Errorf("wire: worker %q needs a capacity", cfg.ID)
	}
	if cfg.Shell == "" {
		cfg.Shell = "/bin/sh"
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 10 * time.Second
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	return &Worker{
		cfg:     cfg,
		running: make(map[int]context.CancelFunc),
	}, nil
}

// Connect dials the master and registers. The worker starts serving
// immediately; Wait blocks until it exits (drain or disconnect).
func Connect(addr string, cfg WorkerConfig) (*Worker, error) {
	w, err := NewWorker(cfg)
	if err != nil {
		return nil, err
	}
	if err := w.Connect(addr); err != nil {
		return nil, err
	}
	return w, nil
}

// Connect establishes a (new) connection to the master: dial,
// register — reporting any tasks still executing from a previous
// connection — and wait for the master's ack. Attempts the ack names
// in drop_ids are canceled; buffered results are flushed. Connect
// returns an error if the worker already drained cleanly, if it still
// has a live connection, or if the handshake fails.
func (w *Worker) Connect(addr string) error {
	w.mu.Lock()
	if w.finished {
		w.mu.Unlock()
		return fmt.Errorf("wire: worker %q already drained", w.cfg.ID)
	}
	if w.conn != nil {
		w.mu.Unlock()
		return fmt.Errorf("wire: worker %q already connected", w.cfg.ID)
	}
	inflight := make([]int, 0, len(w.running))
	for id := range w.running {
		inflight = append(inflight, id)
	}
	w.mu.Unlock()
	slices.Sort(inflight)

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("wire: dial master: %w", err)
	}
	c := newConn(raw)
	if err := c.write(Frame{
		Type:        TypeRegister,
		WorkerID:    w.cfg.ID,
		Cores:       w.cfg.Capacity.MilliCPU,
		MemoryMB:    w.cfg.Capacity.MemoryMB,
		DiskMB:      w.cfg.Capacity.DiskMB,
		InflightIDs: inflight,
	}); err != nil {
		_ = c.close()
		return err
	}
	// The connection is not healthy until the master admits us: wait
	// for the ack under a deadline so a half-open master can't hang
	// the reconnect loop.
	_ = raw.SetReadDeadline(time.Now().Add(w.cfg.HandshakeTimeout))
	ack, err := c.read()
	if err != nil {
		_ = c.close()
		return fmt.Errorf("wire: handshake: %w", err)
	}
	if ack.Type != TypeRegisterAck {
		_ = c.close()
		return fmt.Errorf("wire: handshake: unexpected %q frame", ack.Type)
	}
	_ = raw.SetReadDeadline(time.Time{})

	w.mu.Lock()
	for _, id := range ack.DropIDs {
		if cancel, ok := w.running[id]; ok {
			cancel() // superseded attempt; its late result is dropped below
			delete(w.running, id)
		}
	}
	drop := make(map[int]bool, len(ack.DropIDs))
	for _, id := range ack.DropIDs {
		drop[id] = true
	}
	pending := w.pending
	w.pending = nil
	w.conn = c
	connDone := make(chan struct{})
	w.connDone = connDone
	w.mu.Unlock()

	for _, res := range pending {
		if drop[res.TaskID] {
			continue
		}
		if err := c.write(res); err != nil {
			break
		}
	}
	go w.loop(c, connDone)
	if w.cfg.HeartbeatInterval > 0 {
		go w.heartbeatLoop(c, connDone, w.cfg.HeartbeatInterval)
	}
	return nil
}

func (w *Worker) heartbeatLoop(c *conn, connDone chan struct{}, interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-connDone:
			return
		case <-tick.C:
			if err := c.write(Frame{Type: TypeHeartbeat}); err != nil {
				return
			}
		}
	}
}

// Wait blocks until the current connection ends and returns the
// worker's state: nil after a clean drain, the connection error
// otherwise (the caller may then Connect again to resume).
func (w *Worker) Wait() error {
	w.mu.Lock()
	ch := w.connDone
	w.mu.Unlock()
	if ch != nil {
		<-ch
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close disconnects immediately, cancelling running commands.
func (w *Worker) Close() error {
	w.mu.Lock()
	for _, cancel := range w.running {
		cancel()
	}
	c := w.conn
	w.mu.Unlock()
	if c != nil {
		return c.close()
	}
	return nil
}

func (w *Worker) loop(c *conn, connDone chan struct{}) {
	defer close(connDone)
	for {
		f, err := c.read()
		if err != nil {
			w.mu.Lock()
			if w.conn == c {
				w.conn = nil
			}
			if w.draining && len(w.running) == 0 {
				w.finished = true
				w.err = nil
			} else {
				// Running commands keep executing; their results buffer
				// until the next Connect.
				w.err = err
			}
			w.mu.Unlock()
			_ = c.close()
			return
		}
		switch f.Type {
		case TypeTask:
			w.startTask(f)
		case TypeDrain:
			w.mu.Lock()
			w.draining = true
			idle := len(w.running) == 0
			w.mu.Unlock()
			if idle {
				w.wg.Wait()
				w.mu.Lock()
				if w.conn == c {
					w.conn = nil
				}
				w.finished = true
				w.err = nil
				w.mu.Unlock()
				_ = c.close()
				return
			}
		}
	}
}

func (w *Worker) startTask(f Frame) {
	ctx, cancel := context.WithCancel(context.Background())
	if w.cfg.TaskTimeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), w.cfg.TaskTimeout)
	}
	w.mu.Lock()
	w.running[f.TaskID] = cancel
	w.mu.Unlock()
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer cancel()
		res := w.execute(ctx, f)
		w.mu.Lock()
		if _, mine := w.running[f.TaskID]; !mine {
			// Dropped by a reconnect ack while executing: discard.
			w.mu.Unlock()
			return
		}
		delete(w.running, f.TaskID)
		drainingIdle := w.draining && len(w.running) == 0
		c := w.conn
		w.mu.Unlock()
		delivered := c != nil && c.write(res) == nil
		if !delivered {
			w.mu.Lock()
			w.pending = append(w.pending, res)
			w.mu.Unlock()
		}
		if drainingIdle && c != nil {
			_ = c.close()
		}
	}()
}

func (w *Worker) execute(ctx context.Context, f Frame) Frame {
	start := time.Now()
	cmd := exec.CommandContext(ctx, w.cfg.Shell, "-c", f.Command)
	// Without a wait delay, a killed shell whose children still hold
	// the output pipe would block CombinedOutput forever.
	cmd.WaitDelay = time.Second
	out, err := cmd.CombinedOutput()
	wall := time.Since(start)
	res := Frame{
		Type:   TypeResult,
		TaskID: f.TaskID,
		Output: truncate(string(out), 16*1024),
		WallMS: wall.Milliseconds(),
	}
	// Measured CPU: rusage user+system over wall time — the signal
	// the resource monitor aggregates per category.
	if cmd.ProcessState != nil && wall > 0 {
		cpu := cmd.ProcessState.UserTime() + cmd.ProcessState.SystemTime()
		res.CPUMilli = int64(float64(cpu) / float64(wall) * 1000)
	}
	if err != nil {
		if exitErr, ok := err.(*exec.ExitError); ok {
			res.ExitCode = exitErr.ExitCode()
		} else {
			res.ExitCode = -1
			res.Error = err.Error()
		}
	}
	return res
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
