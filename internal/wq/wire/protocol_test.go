package wire

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"hta/internal/resources"
)

// TestHalfWrittenFrameDoesNotWedgeMaster is the regression test for
// the registration read deadline: a peer that connects, writes half a
// frame, and stalls used to pin a serve goroutine on a read that
// never returns — and Close, which waits for every serve goroutine,
// hung with it. Now the master drops the peer at RegisterTimeout and
// keeps serving real workers.
func TestHalfWrittenFrameDoesNotWedgeMaster(t *testing.T) {
	m, err := ListenConfig("127.0.0.1:0", MasterConfig{RegisterTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })

	peer, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if _, err := peer.Write([]byte(`{"type":"regi`)); err != nil { // no newline, never finished
		t.Fatal(err)
	}

	// The master must hang up on the stalled peer.
	peer.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := peer.Read(make([]byte, 1)); err == nil {
		t.Fatal("master kept the half-written connection open past the register timeout")
	}

	// And still admit a real worker afterwards.
	w, err := Connect(m.Addr(), WorkerConfig{ID: "w1", Capacity: resources.New(2, 1024, 100)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	waitFor(t, func() bool { return m.Stats().Workers == 1 }, "worker to register")

	// Close must return promptly — the wedge was a serve goroutine
	// Close's WaitGroup never saw exit.
	closed := make(chan error, 1)
	go func() { closed <- m.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung: a serve goroutine is still wedged")
	}
}

// TestOversizedFrameDropped: a peer flooding more than maxFrameBytes
// without a newline is disconnected instead of growing the scan
// buffer without bound.
func TestOversizedFrameDropped(t *testing.T) {
	m, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })

	peer, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	junk := []byte(strings.Repeat("a", 64<<10))
	for written := 0; written <= maxFrameBytes+len(junk); written += len(junk) {
		if _, err := peer.Write(junk); err != nil {
			break // master already hung up mid-flood — that's the point
		}
	}
	peer.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := peer.Read(make([]byte, 1)); err == nil {
		t.Fatal("master kept reading an unbounded frame")
	}
	if m.Stats().Workers != 0 {
		t.Fatalf("flood registered as a worker: %+v", m.Stats())
	}
}

// TestParseFrameRejects pins the decoder's error cases directly.
func TestParseFrameRejects(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"empty", ""},
		{"not json", "garbage"},
		{"half frame", `{"type":"regi`},
		{"no type", `{"worker_id":"w1"}`},
		{"wrong field type", `{"type":"task","task_id":"nope"}`},
	}
	for _, tc := range cases {
		if _, err := parseFrame([]byte(tc.line)); err == nil {
			t.Errorf("%s: parseFrame accepted %q", tc.name, tc.line)
		}
	}
	f, err := parseFrame([]byte(`{"type":"register","worker_id":"w1","cores":4000}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeRegister || f.WorkerID != "w1" || f.Cores != 4000 {
		t.Fatalf("parseFrame = %+v", f)
	}
	if _, err := parseFrame(make([]byte, maxFrameBytes+1)); err != errFrameTooLong {
		t.Fatalf("oversized line: err = %v, want errFrameTooLong", err)
	}
}

// FuzzProtocolParse fuzzes the frame decoder: it must never panic,
// and every frame it accepts must have a type and survive a
// marshal/parse round trip. The committed corpus
// (testdata/fuzz/FuzzProtocolParse) seeds one example per frame type
// plus the malformed shapes the parser rejects.
func FuzzProtocolParse(f *testing.F) {
	f.Add([]byte(`{"type":"register","worker_id":"w1","cores":4000,"memory_mb":1024,"inflight_ids":[1,2]}`))
	f.Add([]byte(`{"type":"register_ack","worker_id":"w1","drop_ids":[3]}`))
	f.Add([]byte(`{"type":"task","task_id":7,"command":"echo hi","category":"sim","req_cores":870}`))
	f.Add([]byte(`{"type":"result","task_id":7,"exit_code":0,"output":"hi","wall_ms":12,"cpu_milli":430}`))
	f.Add([]byte(`{"type":"heartbeat"}`))
	f.Add([]byte(`{"type":"drain"}`))
	f.Add([]byte(`{"type":"regi`))
	f.Add([]byte(`{"worker_id":"no-type"}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, line []byte) {
		fr, err := parseFrame(line)
		if err != nil {
			return
		}
		if fr.Type == "" {
			t.Fatal("parseFrame accepted a frame without type")
		}
		data, err := json.Marshal(fr)
		if err != nil {
			t.Fatalf("accepted frame does not re-marshal: %v", err)
		}
		again, err := parseFrame(data)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		b2, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("round-tripped frame does not re-marshal: %v", err)
		}
		if string(b2) != string(data) {
			t.Fatalf("round trip changed frame: %s vs %s", data, b2)
		}
	})
}
