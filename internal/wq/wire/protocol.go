// Package wire implements the Work Queue master/worker protocol over
// real TCP, complementing the simulated runtime in package wq: a
// master listens for workers, workers register their capacities,
// receive tasks, execute the task commands in a shell, and stream
// results back. The same conservative dispatch rules apply — a task
// with unknown requirements holds a whole worker.
//
// The protocol is newline-delimited JSON. Every frame carries a
// "type" discriminator:
//
//	worker → master: register, result, heartbeat
//	master → worker: register_ack, task, drain
//
// Registration is a two-way handshake: the master admits the worker
// with a register_ack frame (a reconnecting worker is not healthy
// until the ack arrives — a listener that accepts and drops the
// connection must not reset reconnect backoff). A reconnecting worker
// reports the task IDs still executing from its previous connection;
// the master rescues the attempts it still has parked for that worker
// and tells it to drop the rest via the ack's drop_ids.
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Message types.
const (
	TypeRegister    = "register"
	TypeRegisterAck = "register_ack"
	TypeResult      = "result"
	TypeTask        = "task"
	TypeDrain       = "drain"
	TypeHeartbeat   = "heartbeat"
)

// Frame is the wire message envelope. Unused fields are omitted per
// type.
type Frame struct {
	Type string `json:"type"`

	// register
	WorkerID string `json:"worker_id,omitempty"`
	Cores    int64  `json:"cores,omitempty"`     // millicores
	MemoryMB int64  `json:"memory_mb,omitempty"` // MB
	DiskMB   int64  `json:"disk_mb,omitempty"`   // MB
	// InflightIDs are the tasks still executing from the worker's
	// previous connection (reconnect handshake).
	InflightIDs []int `json:"inflight_ids,omitempty"`

	// register_ack
	// DropIDs are reported in-flight attempts the master no longer
	// wants (superseded while the worker was away); the worker cancels
	// them and discards their results.
	DropIDs []int `json:"drop_ids,omitempty"`

	// task
	TaskID   int    `json:"task_id,omitempty"`
	Command  string `json:"command,omitempty"`
	Category string `json:"category,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// ReqCores is the task's declared requirement in millicores
	// (0 = unknown, the worker runs it exclusively).
	ReqCores    int64 `json:"req_cores,omitempty"`
	ReqMemoryMB int64 `json:"req_memory_mb,omitempty"`

	// result
	ExitCode int    `json:"exit_code,omitempty"`
	Output   string `json:"output,omitempty"`
	WallMS   int64  `json:"wall_ms,omitempty"`
	// CPUMilli is the measured average CPU consumption in millicores
	// (rusage user+system time over wall time).
	CPUMilli int64  `json:"cpu_milli,omitempty"`
	Error    string `json:"error,omitempty"`
}

// conn wraps a TCP connection with line-oriented JSON framing and a
// write lock, safe for one reader goroutine plus concurrent writers.
type conn struct {
	raw net.Conn
	r   *bufio.Scanner
	wmu sync.Mutex
	// readTimeout bounds each read call; 0 blocks indefinitely.
	readTimeout time.Duration
}

// maxFrameBytes caps one frame's length. A peer that emits more
// without a newline — garbage or a deliberate flood — gets its
// connection dropped with errFrameTooLong instead of growing the
// scanner buffer without bound.
const maxFrameBytes = 1 << 20

var errFrameTooLong = fmt.Errorf("wire: frame exceeds %d bytes", maxFrameBytes)

func newConn(raw net.Conn) *conn {
	sc := bufio.NewScanner(raw)
	sc.Buffer(make([]byte, 0, 4096), maxFrameBytes)
	return &conn{raw: raw, r: sc}
}

// setReadTimeout bounds every subsequent read; 0 restores blocking
// reads (liveness is then the caller's heartbeat reaper's job).
func (c *conn) setReadTimeout(d time.Duration) { c.readTimeout = d }

// read blocks for the next frame, up to the configured read timeout.
func (c *conn) read() (Frame, error) {
	var deadline time.Time // zero = no deadline
	if c.readTimeout > 0 {
		deadline = time.Now().Add(c.readTimeout)
	}
	if err := c.raw.SetReadDeadline(deadline); err != nil {
		return Frame{}, fmt.Errorf("wire: set read deadline: %w", err)
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			if errors.Is(err, bufio.ErrTooLong) {
				return Frame{}, errFrameTooLong
			}
			return Frame{}, err
		}
		return Frame{}, fmt.Errorf("wire: connection closed")
	}
	return parseFrame(c.r.Bytes())
}

// parseFrame decodes one newline-stripped wire frame. Split out of
// read so the decoder can be fuzzed without a socket.
func parseFrame(line []byte) (Frame, error) {
	if len(line) > maxFrameBytes {
		return Frame{}, errFrameTooLong
	}
	var f Frame
	if err := json.Unmarshal(line, &f); err != nil {
		return Frame{}, fmt.Errorf("wire: malformed frame: %w", err)
	}
	if f.Type == "" {
		return Frame{}, fmt.Errorf("wire: frame without type")
	}
	return f, nil
}

// write sends one frame.
func (c *conn) write(f Frame) error {
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.raw.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	return nil
}

func (c *conn) close() error { return c.raw.Close() }
