package wire

import (
	"math/rand"
	"time"
)

// Backoff produces exponential delays with multiplicative jitter for
// the real-network self-healing paths: a worker reconnecting to its
// master, the operator re-establishing a pod watch. Jitter keeps a
// fleet that lost the same master from reconnecting in lockstep.
// Not safe for concurrent use.
type Backoff struct {
	Base   time.Duration // first delay
	Max    time.Duration // delay cap
	Jitter float64       // ± fraction applied to each delay

	attempt int
	rng     *rand.Rand
}

// NewBackoff returns a backoff starting at base, doubling up to max,
// with ±20% jitter.
func NewBackoff(base, max time.Duration) *Backoff {
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	if max < base {
		max = base
	}
	return &Backoff{
		Base:   base,
		Max:    max,
		Jitter: 0.2,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Next returns the next delay in the sequence.
func (b *Backoff) Next() time.Duration {
	d := b.Base
	for i := 0; i < b.attempt; i++ {
		d *= 2
		if d >= b.Max {
			d = b.Max
			break
		}
	}
	b.attempt++
	if b.Jitter > 0 && b.rng != nil {
		d = time.Duration(float64(d) * (1 + b.Jitter*(2*b.rng.Float64()-1)))
	}
	if d > time.Duration(float64(b.Max)*(1+b.Jitter)) {
		d = b.Max
	}
	return d
}

// Reset returns the sequence to its base delay, after a success.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempts returns how many delays have been handed out since the
// last Reset.
func (b *Backoff) Attempts() int { return b.attempt }
