package wire

import (
	"net"
	"testing"
	"time"

	"hta/internal/resources"
)

// TestBackoffNotResetBySuccessfulDialAlone is the regression test for
// the reconnect pacing bug: the backoff must reset only after the
// master's register_ack, not after a successful TCP dial. Against a
// listener that accepts and immediately closes (a crash-looping
// master), every attempt dials fine and fails the handshake — the
// retry delays must keep growing.
func TestBackoffNotResetBySuccessfulDialAlone(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	var sleeps []time.Duration
	now := time.Unix(0, 0)
	err = RunWorker(ln.Addr().String(), WorkerConfig{
		ID:               "w1",
		Capacity:         resources.New(1, 256, 10),
		HandshakeTimeout: time.Second,
	}, RunOptions{
		ReconnectWindow: 100 * time.Millisecond,
		Backoff:         &Backoff{Base: 10 * time.Millisecond, Max: 10 * time.Second},
		Sleep: func(d time.Duration) {
			sleeps = append(sleeps, d)
			now = now.Add(d) // virtual time: no real sleeping
		},
		Now: func() time.Time { return now },
	})
	if err == nil {
		t.Fatal("RunWorker should give up once the reconnect window expires")
	}
	// 10+20+40+80 ms crosses the 100 ms window: exactly 4 growing
	// delays. A dial-resets-backoff regression would sleep a constant
	// 10 ms (and 10 more times before giving up).
	if len(sleeps) != 4 {
		t.Fatalf("sleeps = %v, want 4 strictly growing delays", sleeps)
	}
	for i := 1; i < len(sleeps); i++ {
		if sleeps[i] <= sleeps[i-1] {
			t.Fatalf("delay %d did not grow: %v (backoff reset by successful dial?)", i, sleeps)
		}
	}
}

// TestReconnectRescuesInflightTask severs a worker's connection while
// its command is executing: the command keeps running, the worker
// reconnects inside the reattach grace, and the master rescues the
// attempt instead of rescheduling it.
func TestReconnectRescuesInflightTask(t *testing.T) {
	m, err := ListenConfig("127.0.0.1:0", MasterConfig{ReattachGrace: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	runDone := make(chan error, 1)
	go func() {
		runDone <- RunWorker(m.Addr(), WorkerConfig{
			ID:       "w1",
			Capacity: resources.New(1, 256, 10),
		}, RunOptions{
			ReconnectWindow: 10 * time.Second,
			Backoff:         &Backoff{Base: 20 * time.Millisecond, Max: 100 * time.Millisecond},
		})
	}()
	waitFor(t, func() bool { return m.Stats().Workers == 1 }, "registration")

	id := m.Submit("sleep 0.6; echo rescued", "c", resources.New(1, 1, 1))
	waitFor(t, func() bool { st, _ := m.Task(id); return st.Status == StatusRunning }, "dispatch")

	// Sever the TCP connection under the worker (network blip); the
	// shell command keeps executing.
	m.mu.Lock()
	wc := m.workers["w1"]
	m.mu.Unlock()
	_ = wc.conn.close()

	waitFor(t, func() bool { st, _ := m.Task(id); return st.Status == StatusDone }, "completion after reconnect")
	st, _ := m.Task(id)
	if st.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1 (rescued, not redispatched)", st.Attempts)
	}
	if st.ExitCode != 0 || st.Output == "" {
		t.Errorf("result lost across reconnect: %+v", st)
	}
	if got := m.RescuedCount(); got != 1 {
		t.Errorf("RescuedCount = %d, want 1", got)
	}
	if err := m.Drain("w1"); err != nil {
		t.Fatal(err)
	}
	if err := <-runDone; err != nil {
		t.Errorf("RunWorker after drain: %v", err)
	}
}

// TestReattachGraceExpiryRequeues parks a disconnected worker's task
// and requeues it when the worker never returns.
func TestReattachGraceExpiryRequeues(t *testing.T) {
	m, err := ListenConfig("127.0.0.1:0", MasterConfig{ReattachGrace: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	w, err := Connect(m.Addr(), WorkerConfig{ID: "w1", Capacity: resources.New(1, 256, 10)})
	if err != nil {
		t.Fatal(err)
	}
	id := m.Submit("sleep 30", "c", resources.New(1, 1, 1))
	waitFor(t, func() bool { st, _ := m.Task(id); return st.Status == StatusRunning }, "dispatch")

	w.Close() // worker dies for good
	// Parked first: still assigned during the grace window...
	if st, _ := m.Task(id); st.Status != StatusRunning {
		t.Fatalf("status right after disconnect = %v, want still running (parked)", st.Status)
	}
	// ...then requeued once the grace expires.
	waitFor(t, func() bool { st, _ := m.Task(id); return st.Status == StatusWaiting }, "requeue after grace")
}
