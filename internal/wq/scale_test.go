package wq

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"hta/internal/resources"
	"hta/internal/simclock"
)

// TestCancelWhileWaitingLargeQueue is the regression test for the
// indexed waiting queue: cancel a large scattered subset of a big
// queue (the case the old O(n)-per-cancel scan made quadratic) and
// check that exactly the survivors run, in queue order.
func TestCancelWhileWaitingLargeQueue(t *testing.T) {
	eng, m := newMaster(t)
	const n = 5000
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		spec := knownTask("bulk", 1, time.Second)
		spec.Priority = i % 3
		ids = append(ids, m.Submit(spec))
	}
	canceled := make(map[int]bool)
	for i, id := range ids {
		if i%2 == 0 || i%7 == 3 {
			if err := m.Cancel(id); err != nil {
				t.Fatalf("Cancel(%d): %v", id, err)
			}
			canceled[id] = true
		}
	}
	if got, want := m.Stats().Waiting, n-len(canceled); got != want {
		t.Fatalf("Waiting = %d, want %d", got, want)
	}
	// The queue must report exactly the survivors, in submission order
	// (equal priorities aside — WaitingTasks is global queue order).
	waiting := m.WaitingTasks()
	if len(waiting) != n-len(canceled) {
		t.Fatalf("len(WaitingTasks) = %d, want %d", len(waiting), n-len(canceled))
	}
	prev := 0
	for _, w := range waiting {
		if canceled[w.ID] {
			t.Fatalf("canceled task %d still waiting", w.ID)
		}
		if w.ID <= prev {
			t.Fatalf("queue order violated: %d after %d", w.ID, prev)
		}
		prev = w.ID
	}
	m.AddWorker("w1", resources.New(4, 16384, 100000))
	eng.Run()
	if got, want := m.CompletedCount(), n-len(canceled); got != want {
		t.Fatalf("completed %d, want %d", got, want)
	}
	for _, id := range ids {
		task, ok := m.Task(id)
		if !ok {
			t.Fatalf("task %d lost", id)
		}
		want := TaskComplete
		if canceled[id] {
			want = TaskCanceled
		}
		if task.State != want {
			t.Fatalf("task %d state = %v, want %v", id, task.State, want)
		}
	}
}

// runDeterminismTrace drives a master through a mixed scenario —
// priorities, unknown-resource (exclusive) tasks, cancellations, a
// worker kill, a drain — and returns a trace of every completion.
func runDeterminismTrace(seed int64) string {
	return runPlacementTrace(seed, FirstFit, false, false)
}

// runPlacementTrace is runDeterminismTrace parameterized over the
// engine implementation and the placement path, so the differential
// test can assert that the avail-index FirstFit, the retained linear
// scan, and both event cores all produce byte-identical outcomes.
func runPlacementTrace(seed int64, policy Policy, reference, naive bool) string {
	eng := simclock.NewEngine(t0)
	if reference {
		eng = simclock.NewReferenceEngine(t0)
	}
	m := NewMaster(eng, nil)
	m.SetPolicy(policy)
	m.SetNaivePlacement(naive)
	var b strings.Builder
	m.OnComplete(func(r Result) {
		fmt.Fprintf(&b, "%d %s %s %d %v %d\n",
			r.Task.ID, r.Task.Category, r.Task.WorkerID, r.Task.Priority,
			r.Task.FinishedAt.Sub(t0), r.Task.Attempts)
	})
	for i := 0; i < 8; i++ {
		m.AddWorker(fmt.Sprintf("w%d", i), resources.New(4, 16384, 100000))
	}
	rng := simclock.NewRNG(seed)
	var ids []int
	for i := 0; i < 400; i++ {
		spec := knownTask("mix", 1+float64(i%2), time.Duration(rng.Jitter(float64(3*time.Minute), 0.6)))
		spec.Priority = i % 3
		if i%17 == 5 {
			spec.Resources = resources.Zero // exclusive placement path
		}
		ids = append(ids, m.Submit(spec))
	}
	eng.After(2*time.Minute, "cancel-some", func() {
		for i := 10; i < 60; i += 3 {
			m.Cancel(ids[i]) // some waiting, some running, some done
		}
	})
	eng.After(5*time.Minute, "kill", func() { m.KillWorker("w3") })
	eng.After(9*time.Minute, "drain", func() { m.DrainWorker("w5", nil) })
	eng.Run()
	fmt.Fprintf(&b, "completed=%d\n", m.CompletedCount())
	return b.String()
}

// TestDispatchDeterministic asserts the indexed dispatch path is
// reproducible: the same seed yields a byte-identical completion
// trace across runs, and different seeds genuinely differ.
func TestDispatchDeterministic(t *testing.T) {
	a, b := runDeterminismTrace(7), runDeterminismTrace(7)
	if a != b {
		t.Fatalf("same seed, different traces:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if a == runDeterminismTrace(8) {
		t.Fatal("different seeds produced identical traces; trace is insensitive")
	}
}
