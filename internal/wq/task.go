// Package wq implements a Work Queue-style master/worker job
// scheduler: a master holds a queue of tasks, workers with declared
// resource capacities connect to it, and the master dispatches tasks
// first-fit onto workers. When a task's resource requirements are
// unknown the master falls back to the conservative policy of the
// paper's §III-A — one task per worker, holding the whole worker —
// until a resource estimator (fed by completed-task measurements)
// can size tasks of the same category.
//
// The package provides a fully simulated runtime (Master) driven by a
// discrete-event engine, used by the autoscaling experiments, and a
// TCP wire protocol (subpackage wire) with the same task model for
// running a real master and workers across processes.
package wq

import (
	"fmt"
	"time"

	"hta/internal/resources"
)

// TaskState is the lifecycle state of a task at the master.
type TaskState int

// Task states.
const (
	TaskWaiting     TaskState = iota // queued at the master
	TaskRunning                      // dispatched to a worker
	TaskComplete                     // finished and retrieved
	TaskCanceled                     // withdrawn by the client
	TaskQuarantined                  // retry budget exhausted; never resubmitted
	TaskRejected                     // shed at the admission hard cap; never queued
)

// String returns the lower-case state name.
func (s TaskState) String() string {
	switch s {
	case TaskWaiting:
		return "waiting"
	case TaskRunning:
		return "running"
	case TaskComplete:
		return "complete"
	case TaskCanceled:
		return "canceled"
	case TaskQuarantined:
		return "quarantined"
	case TaskRejected:
		return "rejected"
	}
	return fmt.Sprintf("taskstate(%d)", int(s))
}

// File is a named input artifact with its size.
type File struct {
	Name   string
	SizeMB float64
}

// Profile describes how a task behaves when executed; the simulated
// worker uses it to model transfers, execution time and resource
// consumption. Generators calibrate profiles to the paper's
// workloads.
type Profile struct {
	// ExecDuration is the task's execution time once all inputs are
	// present on the worker.
	ExecDuration time.Duration
	// UsedCPUMilli is the CPU the task actually consumes while
	// executing (e.g. ≈870 for a BLAST alignment, ≈150 for an
	// I/O-bound dd task).
	UsedCPUMilli int64
	// UsedMemoryMB is the peak memory consumption.
	UsedMemoryMB int64
	// UsedDiskMB is the peak scratch-disk consumption.
	UsedDiskMB int64
}

// Usage converts the profile's consumption into a resource vector.
func (p Profile) Usage() resources.Vector {
	return resources.Vector{MilliCPU: p.UsedCPUMilli, MemoryMB: p.UsedMemoryMB, DiskMB: p.UsedDiskMB}
}

// TaskSpec is what a client submits.
type TaskSpec struct {
	// Tag is an opaque client identifier (e.g. the DAG node ID).
	Tag string
	// Command is the shell command (executed verbatim by real
	// workers; informational in simulation).
	Command string
	// Category tags tasks that are copies of the same program;
	// the resource monitor aggregates measurements per category.
	Category string
	// Priority orders dispatch: higher-priority tasks are considered
	// first; ties keep submission order (Work Queue semantics).
	Priority int
	// Resources is the declared requirement; the zero vector means
	// unknown.
	Resources resources.Vector
	// SharedInputs are cacheable input files (fetched once per
	// worker, e.g. the 1.4 GB BLAST database).
	SharedInputs []File
	// InputMB is the task-private input size.
	InputMB float64
	// OutputMB is the output size transferred back to the master.
	OutputMB float64
	// Profile models the task's execution (simulation only).
	Profile Profile
}

// Task is the master's record of a submitted task.
type Task struct {
	ID int
	TaskSpec

	State    TaskState
	WorkerID string // worker currently (or last) hosting the task
	Attempts int    // dispatch count, >1 after requeues
	// Gen is the attempt generation, bumped on every dispatch. After a
	// master restart it fences stale attempts: a reattaching worker
	// reporting an in-flight task is only allowed to resume it when its
	// generation matches the restored record (see AttachWorker).
	Gen int

	SubmittedAt time.Time
	StartedAt   time.Time // last dispatch time
	FinishedAt  time.Time

	// Allocated is the resource amount the task held on its worker
	// during its last run (its declared size, an estimate, or the
	// whole worker in conservative mode).
	Allocated resources.Vector
	// Exclusive records that the task ran alone holding the whole
	// worker (conservative mode).
	Exclusive bool
	// Measured is the observed consumption reported at completion.
	Measured resources.Vector
	// ExecWall is the measured wall time from dispatch to completion
	// (transfers included).
	ExecWall time.Duration
}

// Result is delivered to completion subscribers.
type Result struct {
	Task Task // copy of the completed task
}

// Estimator predicts resource requirements and execution time for a
// task category from completed-task measurements. The resource
// monitor implements it.
type Estimator interface {
	// EstimateResources returns the predicted per-task requirement
	// for the category, and whether a prediction is available.
	EstimateResources(category string) (resources.Vector, bool)
	// EstimateExecTime returns the predicted execution time for the
	// category, and whether a prediction is available.
	EstimateExecTime(category string) (time.Duration, bool)
}
