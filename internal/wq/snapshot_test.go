package wq

import (
	"testing"
	"time"

	"hta/internal/resources"
	"hta/internal/simclock"
)

// crashRestore crashes the master, advances the clock by downtime,
// restores, and reattaches every worker the crash detached.
func crashRestore(t *testing.T, eng *simclock.Engine, m *Master, downtime, window time.Duration) {
	t.Helper()
	snap, workers := m.Crash()
	eng.RunUntil(eng.Now().Add(downtime))
	m.Restore(snap, window)
	for _, w := range workers {
		if err := m.AttachWorker(w); err != nil {
			t.Fatalf("AttachWorker(%s): %v", w.ID, err)
		}
	}
}

func TestCrashRestoreRescuesRunningTask(t *testing.T) {
	eng, m := newMaster(t)
	var done []Result
	m.OnComplete(func(r Result) { done = append(done, r) })
	m.AddWorker("w1", resources.New(4, 16384, 1000))
	id := m.Submit(knownTask("align", 1, 10*time.Minute))

	eng.RunUntil(t0.Add(2 * time.Minute))
	if tk, _ := m.Task(id); tk.State != TaskRunning {
		t.Fatalf("state before crash = %v", tk.State)
	}
	crashRestore(t, eng, m, 30*time.Second, 2*time.Minute)

	if tk, _ := m.Task(id); tk.State != TaskRunning || tk.WorkerID != "w1" {
		tk, _ := m.Task(id)
		t.Fatalf("after reattach: state=%v worker=%q, want running on w1", tk.State, tk.WorkerID)
	}
	eng.Run()
	if len(done) != 1 {
		t.Fatalf("completions = %d, want 1", len(done))
	}
	tk := done[0].Task
	// The rescued attempt is the same attempt continuing, not a retry:
	// no second dispatch, and the worker executed right through the
	// master's downtime, so the makespan matches the no-crash run.
	if tk.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1 (rescue must not redispatch)", tk.Attempts)
	}
	if want := t0.Add(10 * time.Minute); !tk.FinishedAt.Equal(want) {
		t.Errorf("FinishedAt = %v, want %v", tk.FinishedAt, want)
	}
	rec := m.RecoveryStats()
	if rec.RescuedTasks != 1 || rec.FencedAttempts != 0 || rec.RequeuedUnrescued != 0 {
		t.Errorf("recovery counters = %+v", rec)
	}
	if m.Epoch() != 1 {
		t.Errorf("Epoch = %d, want 1", m.Epoch())
	}
	if fs := m.FailureStats(); fs.Requeues != 0 || fs.Quarantined != 0 {
		t.Errorf("failure stats = %+v, want no requeues/quarantines", fs)
	}
}

func TestRescueWindowExpiryRetriesWithBackoffNotQuarantine(t *testing.T) {
	eng, m := newMaster(t)
	// A budget of one attempt: a charged failure would quarantine the
	// task immediately. Losing the worker during the master's downtime
	// must not be charged.
	m.SetRetryPolicy(RetryPolicy{MaxAttempts: 1, BackoffBase: 30 * time.Second})
	var done []Result
	m.OnComplete(func(r Result) { done = append(done, r) })
	m.AddWorker("w1", resources.New(4, 16384, 1000))
	id := m.Submit(knownTask("align", 1, 10*time.Minute))
	eng.RunUntil(t0.Add(time.Minute))

	snap, _ := m.Crash() // w1's reattach record is dropped: the worker dies with the master down
	eng.RunUntil(eng.Now().Add(15 * time.Second))
	m.Restore(snap, 30*time.Second)

	// Within the rescue window the task is still owed to its worker.
	eng.RunUntil(eng.Now().Add(20 * time.Second))
	if tk, _ := m.Task(id); tk.State != TaskRunning {
		t.Fatalf("state inside rescue window = %v, want running", tk.State)
	}
	// Window expires 10s later: retried with backoff, not quarantined.
	// Check before the 30s backoff elapses.
	eng.RunUntil(eng.Now().Add(20 * time.Second))
	tk, _ := m.Task(id)
	if tk.State != TaskWaiting {
		t.Fatalf("state after rescue window = %v, want waiting", tk.State)
	}
	if m.WaitingRetries() != 1 {
		t.Fatalf("WaitingRetries = %d, want 1 (backoff applies)", m.WaitingRetries())
	}
	rec := m.RecoveryStats()
	if rec.RequeuedUnrescued != 1 || rec.RescuedTasks != 0 {
		t.Errorf("recovery counters = %+v", rec)
	}
	m.AddWorker("w2", resources.New(4, 16384, 1000))
	eng.Run()
	if len(done) != 1 || done[0].Task.ID != id {
		t.Fatalf("completions = %v, want task %d to finish on w2", done, id)
	}
	if done[0].Task.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", done[0].Task.Attempts)
	}
	if q := m.QuarantinedCount(); q != 0 {
		t.Errorf("Quarantined = %d, want 0 (downtime loss is not charged)", q)
	}
}

func TestAttachWorkerFencesSupersededAttempt(t *testing.T) {
	eng, m := newMaster(t)
	var done []Result
	m.OnComplete(func(r Result) { done = append(done, r) })
	m.AddWorker("w1", resources.New(4, 16384, 1000))
	id := m.Submit(knownTask("align", 1, 10*time.Minute))
	eng.RunUntil(t0.Add(time.Minute))

	// Crash with a zero rescue window: the restored master gives up on
	// the in-flight attempt immediately and redispatches it elsewhere.
	snap, workers := m.Crash()
	m.Restore(snap, 0)
	m.AddWorker("w2", resources.New(4, 16384, 1000))
	eng.RunUntil(eng.Now().Add(time.Second))
	if tk, _ := m.Task(id); tk.State != TaskRunning || tk.WorkerID != "w2" {
		t.Fatalf("after expiry: state=%v worker=%q, want running on w2", tk.State, tk.WorkerID)
	}

	// w1 finally reconnects, still reporting the superseded attempt.
	if err := m.AttachWorker(workers[0]); err != nil {
		t.Fatal(err)
	}
	rec := m.RecoveryStats()
	if rec.FencedAttempts != 1 {
		t.Fatalf("FencedAttempts = %d, want 1", rec.FencedAttempts)
	}
	if s := m.Stats(); s.Running != 1 {
		t.Fatalf("Running = %d, want 1 (no double execution)", s.Running)
	}
	eng.Run()
	if len(done) != 1 || done[0].Task.WorkerID != "w2" {
		t.Fatalf("completions = %v, want exactly one on w2", done)
	}
}

func TestRestorePreservesQueueOrderAndBackoffDeadlines(t *testing.T) {
	eng, m := newMaster(t)
	m.SetRetryPolicy(RetryPolicy{BackoffBase: time.Minute})
	// Mixed priorities, no workers: everything queues.
	m.Submit(knownTask("a", 1, time.Minute))
	hi := knownTask("b", 1, time.Minute)
	hi.Priority = 5
	m.Submit(hi)
	m.Submit(knownTask("c", 1, time.Minute))
	// One task fails on a killed worker to seed a backoff deadline.
	m.AddWorker("w1", resources.New(1, 4096, 500))
	eng.RunUntil(t0.Add(10 * time.Second))
	if err := m.KillWorker("w1"); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(t0.Add(11 * time.Second))

	before := m.Snapshot()
	crashRestore(t, eng, m, 20*time.Second, time.Minute)
	after := m.Snapshot()

	if len(before.QueueOrder) != len(after.QueueOrder) {
		t.Fatalf("queue length changed: %v -> %v", before.QueueOrder, after.QueueOrder)
	}
	for i := range before.QueueOrder {
		if before.QueueOrder[i] != after.QueueOrder[i] {
			t.Fatalf("queue order changed: %v -> %v", before.QueueOrder, after.QueueOrder)
		}
	}
	if len(after.RetryResume) != 1 || !after.RetryResume[0].Resume.Equal(before.RetryResume[0].Resume) {
		t.Fatalf("retry deadlines: before %v, after %v", before.RetryResume, after.RetryResume)
	}
	if after.Epoch != before.Epoch+1 {
		t.Errorf("epoch = %d, want %d", after.Epoch, before.Epoch+1)
	}
}

func TestSubmitWhileDownBuffersUntilRestore(t *testing.T) {
	eng, m := newMaster(t)
	var done []Result
	m.OnComplete(func(r Result) { done = append(done, r) })
	m.AddWorker("w1", resources.New(4, 16384, 1000))
	snap, workers := m.Crash()
	if id := m.Submit(knownTask("align", 1, time.Minute)); id != 0 {
		t.Fatalf("Submit while down returned %d, want 0", id)
	}
	if m.SubmittedCount() != 0 {
		t.Fatalf("SubmittedCount while down = %d", m.SubmittedCount())
	}
	m.Restore(snap, time.Minute)
	for _, w := range workers {
		if err := m.AttachWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if m.SubmittedCount() != 1 || len(done) != 1 {
		t.Fatalf("submitted=%d completions=%d, want 1/1", m.SubmittedCount(), len(done))
	}
}

func TestCrashRestoreAccountingInvariant(t *testing.T) {
	eng, m := newMaster(t)
	m.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BackoffBase: 5 * time.Second})
	m.AddWorker("w1", resources.New(4, 16384, 1000))
	m.AddWorker("w2", resources.New(4, 16384, 1000))
	for i := 0; i < 24; i++ {
		m.Submit(knownTask("align", 1, 4*time.Minute))
	}
	eng.RunUntil(t0.Add(3 * time.Minute))
	crashRestore(t, eng, m, 20*time.Second, time.Minute)
	eng.RunUntil(eng.Now().Add(5 * time.Minute))
	crashRestore(t, eng, m, time.Minute, time.Minute)
	eng.Run()

	if s := m.Stats(); s.Waiting != 0 || s.Running != 0 {
		t.Fatalf("unfinished work after run: %+v", s)
	}
	sub, comp, quar := m.SubmittedCount(), m.CompletedCount(), m.QuarantinedCount()
	if sub != comp+quar {
		t.Fatalf("invariant violated: submitted %d != completed %d + quarantined %d", sub, comp, quar)
	}
	if comp != 24 {
		t.Errorf("completed = %d, want 24 (rescues should lose nothing)", comp)
	}
	if rec := m.RecoveryStats(); rec.RescuedTasks == 0 {
		t.Errorf("recovery counters = %+v, want rescues > 0", rec)
	}
}

func TestSnapshotIsSideEffectFree(t *testing.T) {
	eng, m := newMaster(t)
	var done []Result
	m.OnComplete(func(r Result) { done = append(done, r) })
	m.AddWorker("w1", resources.New(4, 16384, 1000))
	for i := 0; i < 6; i++ {
		m.Submit(knownTask("align", 1, time.Minute))
	}
	eng.RunUntil(t0.Add(90 * time.Second))
	snap := m.Snapshot()
	eng.Run()
	if len(done) != 6 {
		t.Fatalf("completions after Snapshot = %d, want 6", len(done))
	}
	// The snapshot still describes the mid-run state it was taken at.
	var running int
	for i := range snap.Tasks {
		if snap.Tasks[i].State == TaskRunning {
			running++
		}
	}
	if running == 0 {
		t.Errorf("snapshot recorded no running tasks at t+90s")
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	eng := simclock.NewEngine(t0)
	m := NewMaster(eng, nil)
	for w := 0; w < 8; w++ {
		m.AddWorker(string(rune('a'+w)), resources.New(8, 32768, 2000))
	}
	for i := 0; i < 1000; i++ {
		m.Submit(knownTask("align", 1, time.Hour))
	}
	eng.RunUntil(t0.Add(time.Minute))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, workers := m.Crash()
		m.Restore(snap, time.Minute)
		for _, w := range workers {
			if err := m.AttachWorker(w); err != nil {
				b.Fatal(err)
			}
		}
	}
}
