package wq

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"hta/internal/resources"
	"hta/internal/simclock"
)

// BenchmarkDispatchThroughput measures submit → dispatch → complete
// for a large bag of known-size tasks over a 10-worker fleet.
func BenchmarkDispatchThroughput(b *testing.B) {
	eng := simclock.NewEngine(t0)
	m := NewMaster(eng, nil)
	for i := 0; i < 10; i++ {
		m.AddWorker(fmt.Sprintf("w%d", i), resources.New(4, 16384, 100000))
	}
	spec := knownTask("bench", 1, 30*time.Second)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Submit(spec)
		if i%256 == 255 {
			eng.Run()
		}
	}
	eng.Run()
	b.StopTimer()
	if m.CompletedCount() != b.N {
		b.Fatalf("completed %d of %d", m.CompletedCount(), b.N)
	}
}

// runScaleDispatch is one full submit → dispatch → complete storm:
// known-size tasks over 4-core workers, with jittered durations so
// completions arrive as a stream of single events — one dispatch pass
// per completion.
func runScaleDispatch(b *testing.B, reference bool, tasks, workers int) {
	eng := simclock.NewEngine(t0)
	if reference {
		eng = simclock.NewReferenceEngine(t0)
	}
	m := NewMaster(eng, nil)
	m.SetNaivePlacement(reference)
	for w := 0; w < workers; w++ {
		m.AddWorker(fmt.Sprintf("w%d", w), resources.New(4, 16384, 100000))
	}
	rng := simclock.NewRNG(1)
	for t := 0; t < tasks; t++ {
		d := time.Duration(rng.Jitter(float64(5*time.Minute), 0.8))
		m.Submit(knownTask("bench", 1, d))
	}
	eng.Run()
	if m.CompletedCount() != tasks {
		b.Fatalf("completed %d of %d", m.CompletedCount(), tasks)
	}
}

// BenchmarkScaleDispatch measures the production-scale event storm the
// ROADMAP targets, on the lane-sharded engine with avail-index
// placement: the 10k-task/500-worker cell is the CI smoke and the
// 1M-task/100k-worker cell is the headline scale target.
func BenchmarkScaleDispatch(b *testing.B) {
	b.Run("10k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runScaleDispatch(b, false, 10_000, 500)
		}
	})
	b.Run("100k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runScaleDispatch(b, false, 1_000_000, 100_000)
		}
	})
	b.Run("1M", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runScaleDispatch(b, false, 10_000_000, 1_000_000)
		}
	})
}

// BenchmarkDispatchMemoryProbe is the 100k headline cell with a heap
// probe riding the simulation: a self-rearming 10-simulated-second
// timer samples runtime.MemStats, and the peak HeapAlloc and GC count
// are reported as benchmark metrics. htabench records the same
// trajectory for the full ladder in BENCH_10.json; this is the CI
// smoke that catches a memory-footprint regression without a full
// bench run.
func BenchmarkDispatchMemoryProbe(b *testing.B) {
	const (
		tasks   = 1_000_000
		workers = 100_000
	)
	for i := 0; i < b.N; i++ {
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		peak := before.HeapAlloc

		eng := simclock.NewEngine(t0)
		m := NewMaster(eng, nil)
		for w := 0; w < workers; w++ {
			m.AddWorker(fmt.Sprintf("w%d", w), resources.New(4, 16384, 100000))
		}
		rng := simclock.NewRNG(1)
		for t := 0; t < tasks; t++ {
			d := time.Duration(rng.Jitter(float64(5*time.Minute), 0.8))
			m.Submit(knownTask("bench", 1, d))
		}
		var sample func()
		sample = func() {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			if m.CompletedCount() < tasks {
				eng.After(10*time.Second, "mem-sample", sample)
			}
		}
		eng.After(10*time.Second, "mem-sample", sample)
		eng.Run()
		if m.CompletedCount() != tasks {
			b.Fatalf("completed %d of %d", m.CompletedCount(), tasks)
		}

		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
		b.ReportMetric(float64(after.NumGC-before.NumGC), "GCs")
	}
}

// BenchmarkScaleDispatchReference runs the 10k cell on the retained
// reference engine with the retained linear placement scan — the
// pre-rewrite configuration the speedup is measured against. Like the
// Naive control-plane baselines it is excluded from the CI bench
// smoke; htabench records the measured ratio in BENCH_6.json.
func BenchmarkScaleDispatchReference(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runScaleDispatch(b, true, 10_000, 500)
	}
}

// BenchmarkStatsSnapshot measures the introspection path the
// autoscalers hit every cycle.
func BenchmarkStatsSnapshot(b *testing.B) {
	eng := simclock.NewEngine(t0)
	m := NewMaster(eng, nil)
	for i := 0; i < 20; i++ {
		m.AddWorker(fmt.Sprintf("w%d", i), resources.New(4, 16384, 100000))
	}
	for i := 0; i < 500; i++ {
		m.Submit(knownTask("bench", 1, time.Hour))
	}
	eng.RunFor(time.Second)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Stats()
		_ = m.WaitingTasks()
		_ = m.RunningTasks()
	}
}
