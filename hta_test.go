package hta

import (
	"strings"
	"testing"
	"time"

	"hta/internal/flow"
)

func TestSystemRunTasks(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Cluster().Stop()
	res, err := sys.RunTasks(UniformTasks(20, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 20 {
		t.Errorf("completed = %d", res.Completed)
	}
	if res.Runtime <= 0 {
		t.Error("no runtime recorded")
	}
	if res.PeakWorkers < 3 {
		t.Errorf("peak workers = %d", res.PeakWorkers)
	}
	if res.Supply == nil || res.Waste == nil {
		t.Error("missing series")
	}
	if res.AccumulatedWasteCoreSeconds < 0 || res.AccumulatedShortageCoreSeconds < 0 {
		t.Error("negative integrals")
	}
}

func TestSystemRunMakeflow(t *testing.T) {
	const wf = `
CATEGORY=prep
CORES=1
MEMORY=1024
stage.in: raw
	prep raw > stage.in

CATEGORY=work
CORES=1
MEMORY=1024
out.0: stage.in
	work stage.in 0
out.1: stage.in
	work stage.in 1
`
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Cluster().Stop()
	res, err := sys.RunMakeflow(strings.NewReader(wf), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3 {
		t.Errorf("completed = %d, want 3", res.Completed)
	}
	// prep must run before work: makespan ≥ 2 minutes of the default
	// profile.
	if res.Runtime < 2*time.Minute {
		t.Errorf("runtime = %v, want ≥ 2m (dependency order)", res.Runtime)
	}
}

func TestSystemRunMakeflowParseError(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Cluster().Stop()
	if _, err := sys.RunMakeflow(strings.NewReader("\tindented command\n"), nil); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestSystemCustomCluster(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Cluster:          ClusterConfig{InitialNodes: 2, MaxNodes: 4, Seed: 9},
		Autoscaler:       AutoscalerConfig{InitialWorkers: 2},
		MasterEgressMBps: 500,
		StreamContention: 0.97,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Cluster().Stop()
	if got := sys.Cluster().ReadyNodes(); got != 2 {
		t.Errorf("nodes = %d", got)
	}
	specs := BlastWorkload(10).Specs()
	res, err := sys.RunTasks(specs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 10 {
		t.Errorf("completed = %d", res.Completed)
	}
}

func TestWorkloadGeneratorsExposed(t *testing.T) {
	if got := len(BlastWorkload(7).Specs()); got != 7 {
		t.Errorf("blast specs = %d", got)
	}
	if got := len(IOBoundWorkload().Specs()); got != 200 {
		t.Errorf("io specs = %d", got)
	}
	g, _, err := MultistageWorkload().Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 398 {
		t.Errorf("multistage nodes = %d", g.Len())
	}
}

func TestParseMakeflowExposed(t *testing.T) {
	res, err := ParseMakeflow(strings.NewReader("out: in\n\tcmd\n"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Len() != 1 {
		t.Errorf("len = %d", res.Graph.Len())
	}
}

func TestNewResources(t *testing.T) {
	v := NewResources(2, 4096, 100)
	if v.MilliCPU != 2000 || v.MemoryMB != 4096 || v.DiskMB != 100 {
		t.Errorf("vector = %v", v)
	}
}

func TestRunWorkflowTimeout(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Cluster: ClusterConfig{InitialNodes: 1, MaxNodes: 1, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Cluster().Stop()
	// One enormous task that can never be placed (exceeds any node).
	specs := []TaskSpec{{
		Category:  "huge",
		Resources: NewResources(64, 1, 1),
	}}
	g, fn, err := flow.FromSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunWorkflow(g, fn, time.Hour); err == nil {
		t.Error("expected timeout error")
	}
}

func TestSystemStatus(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Cluster().Stop()
	st := sys.Status()
	if st.Stage != "warm-up" {
		t.Errorf("stage = %q", st.Stage)
	}
	if _, err := sys.RunTasks(UniformTasks(5, time.Minute)); err != nil {
		t.Fatal(err)
	}
	st = sys.Status()
	if st.Stage != "done" || st.Completed != 5 {
		t.Errorf("final status = %+v", st)
	}
}
