// Package hta is a reproduction of "Autoscaling High-Throughput
// Workloads on Container Orchestrators" (Zheng, Kremer-Herman,
// Shaffer, Thain — IEEE CLUSTER 2020): the High-Throughput Autoscaler
// (HTA) middleware together with every substrate it runs on — a
// Makeflow-syntax workflow parser, a Work Queue-style master/worker
// scheduler (simulated and over real TCP), a discrete-event Kubernetes
// control-plane simulator with a Horizontal Pod Autoscaler baseline,
// and the full evaluation harness that regenerates the paper's
// figures and tables.
//
// This package is the public façade: it wires the simulated stack
// together so a downstream user can run an HTC workload under HTA (or
// under the HPA baseline) in a few lines:
//
//	sys, _ := hta.NewSystem(hta.SystemConfig{})
//	res, _ := sys.RunTasks(hta.UniformTasks(100, time.Minute))
//	fmt.Println(res.Runtime, res.AccumulatedWasteCoreSeconds)
//
// The deeper layers are exposed as aliases for advanced use (building
// custom clusters, autoscalers or workloads).
package hta

import (
	"fmt"
	"io"
	"time"

	"hta/internal/core"
	"hta/internal/dag"
	"hta/internal/flow"
	"hta/internal/kubesim"
	"hta/internal/makeflow"
	"hta/internal/metrics"
	"hta/internal/netsim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/workload"
	"hta/internal/wq"
)

// Aliases into the component layers, for users who need more than the
// façade.
type (
	// Engine is the discrete-event simulation engine all components
	// share.
	Engine = simclock.Engine
	// Cluster is the simulated Kubernetes control plane and fleet.
	Cluster = kubesim.Cluster
	// ClusterConfig parameterizes the cluster.
	ClusterConfig = kubesim.Config
	// Master is the Work Queue master.
	Master = wq.Master
	// TaskSpec describes one task.
	TaskSpec = wq.TaskSpec
	// TaskResult is a completed task.
	TaskResult = wq.Result
	// Resources is a (CPU, memory, disk) vector.
	Resources = resources.Vector
	// Autoscaler is the HTA middleware itself.
	Autoscaler = core.Autoscaler
	// AutoscalerConfig parameterizes HTA.
	AutoscalerConfig = core.Config
	// Graph is a workflow DAG.
	Graph = dag.Graph
	// Node is one workflow task node.
	Node = dag.Node
	// Series is a step time series produced by the metrics sampler.
	Series = metrics.Series
)

// NewResources builds a resource vector from cores, memory (MB) and
// disk (MB).
func NewResources(cores float64, memMB, diskMB int64) Resources {
	return resources.New(cores, memMB, diskMB)
}

// ParseMakeflow parses a Makeflow-syntax workflow description.
func ParseMakeflow(r io.Reader) (*makeflow.Result, error) { return makeflow.Parse(r) }

// SystemConfig configures a simulated HTC system.
type SystemConfig struct {
	// Cluster overrides the simulated cluster settings (defaults:
	// 3 initial nodes, 20-node quota, 3-core nodes, GKE-like
	// provisioning latency).
	Cluster ClusterConfig
	// Autoscaler overrides HTA settings.
	Autoscaler AutoscalerConfig
	// MasterEgressMBps models the master's shared egress link
	// (0 = data movement is free).
	MasterEgressMBps float64
	// StreamContention is the per-extra-stream link efficiency in
	// (0,1]; 0 means no contention model.
	StreamContention float64
	// Start is the virtual start time (defaults to a fixed epoch so
	// runs are reproducible).
	Start time.Time
}

// System is a wired simulated stack: engine + cluster + master + HTA.
type System struct {
	eng     *simclock.Engine
	cluster *kubesim.Cluster
	master  *wq.Master
	auto    *core.Autoscaler
	link    *netsim.Link
}

// NewSystem builds the simulated stack and starts HTA's warm-up stage
// (master StatefulSet, services, initial worker pods).
func NewSystem(cfg SystemConfig) (*System, error) {
	start := cfg.Start
	if start.IsZero() {
		start = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	}
	eng := simclock.NewEngine(start)
	cluster := kubesim.NewCluster(eng, cfg.Cluster)
	var link *netsim.Link
	if cfg.MasterEgressMBps > 0 {
		link = netsim.NewLink(eng, cfg.MasterEgressMBps, 0)
		if cfg.StreamContention > 0 && cfg.StreamContention < 1 {
			link.SetContention(cfg.StreamContention)
		}
	}
	master := wq.NewMaster(eng, link)
	auto := core.New(eng, cluster, master, cfg.Autoscaler)
	if err := auto.Start(); err != nil {
		return nil, err
	}
	return &System{eng: eng, cluster: cluster, master: master, auto: auto, link: link}, nil
}

// Engine returns the simulation engine (to schedule custom events or
// advance time manually).
func (s *System) Engine() *Engine { return s.eng }

// Cluster returns the simulated cluster.
func (s *System) Cluster() *Cluster { return s.cluster }

// Master returns the Work Queue master.
func (s *System) Master() *Master { return s.master }

// Autoscaler returns the HTA instance.
func (s *System) Autoscaler() *Autoscaler { return s.auto }

// Status reports the autoscaler's current stage, fleet, queue and
// initialization-time estimate.
func (s *System) Status() core.Status { return s.auto.Status() }

// Result summarizes a completed workload run.
type Result struct {
	// Runtime is the workload makespan in virtual time.
	Runtime time.Duration
	// Completed is the number of tasks that finished.
	Completed int
	// InitTimeSamples are the resource-initialization times HTA
	// measured during the run.
	InitTimeSamples []time.Duration
	// Supply, InUse, Shortage and Waste are the sampled
	// supply/demand series in cores.
	Supply, InUse, Shortage, Waste *Series
	// AccumulatedWasteCoreSeconds is ∫(supply − in-use) dt.
	AccumulatedWasteCoreSeconds float64
	// AccumulatedShortageCoreSeconds is ∫shortage dt.
	AccumulatedShortageCoreSeconds float64
	// PeakWorkers is the largest connected-worker count observed.
	PeakWorkers int
}

// RunWorkflow executes a DAG through HTA and blocks (in virtual time)
// until it completes, then runs HTA's clean-up stage. specFor maps
// each node to its task spec. timeout bounds the run in virtual time
// (0 = 24 h).
func (s *System) RunWorkflow(g *Graph, specFor func(Node) TaskSpec, timeout time.Duration) (*Result, error) {
	if timeout == 0 {
		timeout = 24 * time.Hour
	}
	acct := metrics.NewAccount()
	peak := 0
	sample := func() {
		st := s.master.Stats()
		if st.Workers > peak {
			peak = st.Workers
		}
		shortage := float64(st.Waiting + s.auto.HeldTasks()) // ≥1 core per waiting task
		acct.Sample(s.eng.Now(), st.Capacity.CoresValue(), st.InUse.CoresValue(), shortage)
	}
	ticker := s.eng.Every(5*time.Second, "hta-facade-sampler", sample)
	defer ticker.Stop()

	runner := flow.NewRunner(g, s.auto, specFor)
	res := &Result{}
	finished := false
	runner.OnAllDone(func() {
		res.Runtime = s.eng.Elapsed()
		s.auto.Shutdown(func() { finished = true })
	})
	sample()
	runner.Start()
	deadline := s.eng.Now().Add(timeout)
	s.eng.RunWhile(func() bool { return !finished && s.eng.Now().Before(deadline) })
	if !finished {
		return nil, fmt.Errorf("hta: workload did not finish within %v (queue %+v)", timeout, s.master.Stats())
	}
	if err := runner.Err(); err != nil {
		return nil, err
	}
	end := s.eng.Now()
	res.Completed = s.master.CompletedCount()
	res.InitTimeSamples = s.auto.Tracker().Samples()
	res.Supply, res.InUse = acct.Supply, acct.InUse
	res.Shortage, res.Waste = acct.Shortage, acct.Waste
	res.AccumulatedWasteCoreSeconds = acct.AccumulatedWaste(end)
	res.AccumulatedShortageCoreSeconds = acct.AccumulatedShortage(end)
	res.PeakWorkers = peak
	return res, nil
}

// RunTasks executes a flat bag of tasks (no dependencies).
func (s *System) RunTasks(specs []TaskSpec) (*Result, error) {
	g, fn, err := flow.FromSpecs(specs)
	if err != nil {
		return nil, err
	}
	return s.RunWorkflow(g, fn, 0)
}

// RunMakeflow parses a Makeflow description and executes it. Since a
// Makeflow file carries no execution model, synth provides the
// simulated profile for each node (nil uses a uniform default of one
// core-minute per task).
func (s *System) RunMakeflow(r io.Reader, synth func(Node) TaskSpec) (*Result, error) {
	parsed, err := makeflow.Parse(r)
	if err != nil {
		return nil, err
	}
	if synth == nil {
		synth = DefaultMakeflowProfile
	}
	return s.RunWorkflow(parsed.Graph, synth, 0)
}

// DefaultMakeflowProfile synthesizes a task spec for a Makeflow node:
// the node's declared category resources, a one-minute execution time
// and a CPU consumption of 90 % of one core.
func DefaultMakeflowProfile(n Node) TaskSpec {
	return TaskSpec{
		Command:   n.Command,
		Category:  n.Category,
		Resources: n.Resources,
		Profile: wq.Profile{
			ExecDuration: time.Minute,
			UsedCPUMilli: 900,
			UsedMemoryMB: 512,
		},
	}
}

// UniformTasks generates n identical tasks of the given duration with
// unknown resource requirements — the simplest workload for trying
// the system.
func UniformTasks(n int, d time.Duration) []TaskSpec {
	return workload.UniformParams{N: n, Exec: d, Jitter: 0.1, CPUMilli: 900, Seed: 1}.Specs()
}

// BlastWorkload returns the paper's flat BLAST workload generator.
func BlastWorkload(n int) workload.BlastFlatParams { return workload.DefaultBlastFlat(n) }

// MultistageWorkload returns the paper's three-stage BLAST workflow
// generator (Fig. 10).
func MultistageWorkload() workload.MultistageParams { return workload.DefaultMultistage() }

// IOBoundWorkload returns the paper's I/O-bound workload generator
// (Fig. 11).
func IOBoundWorkload() workload.IOBoundParams { return workload.DefaultIOBound() }
