package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"hta/internal/core"
	"hta/internal/experiments"
	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// scaleBenchFile is where -json writes the scale-benchmark results.
// BENCH_1.json (dispatch storm + sweep only) and BENCH_2.json (chaos)
// are earlier artifacts; BENCH_3 adds the control-plane scaling rows.
const scaleBenchFile = "BENCH_3.json"

// scaleBenchResult is one scale benchmark's wall-clock measurement.
type scaleBenchResult struct {
	Name    string  `json:"name"`
	WallMS  float64 `json:"wall_ms"`
	Tasks   int     `json:"tasks,omitempty"`
	Workers int     `json:"workers,omitempty"`
	Nodes   int     `json:"nodes,omitempty"`
	Rows    int     `json:"rows,omitempty"`
	Events  uint64  `json:"events,omitempty"`
	// Speedup is indexed-vs-naive for the paired control-plane rows.
	Speedup float64 `json:"speedup_vs_naive,omitempty"`
}

type scaleBenchReport struct {
	Seed       int64              `json:"seed"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Benchmarks []scaleBenchResult `json:"benchmarks"`
}

// runScaleBench executes the scale benchmarks outside the testing
// framework — the 10k-task dispatch storm, the parallel-vs-serial
// experiment sweep, and the paired indexed-vs-naive control-plane
// benchmarks (Algorithm 1 grouping and kubesim churn) — and writes
// their wall-clock results to BENCH_3.json.
func runScaleBench(seed int64) error {
	rep := scaleBenchReport{Seed: seed, GoMaxProcs: runtime.GOMAXPROCS(0)}

	dispatch, err := benchScaleDispatch(seed)
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, dispatch)

	parallelSweep, err := benchScaleSweep("ScaleSweepParallel", seed, 0)
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, parallelSweep)

	serialSweep, err := benchScaleSweep("ScaleSweepSerial", seed, 1)
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, serialSweep)

	estimate, err := benchEstimatePair()
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, estimate...)

	churn, err := benchKubesimChurnPair(seed)
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, churn...)

	f, err := os.Create(scaleBenchFile)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	fmt.Printf("scale-benchmark results written to %s\n", scaleBenchFile)
	return nil
}

// benchScaleDispatch mirrors internal/wq's BenchmarkScaleDispatch:
// 10k known-size tasks over 500 4-core workers with jittered
// durations, so completions arrive as a stream of single events.
func benchScaleDispatch(seed int64) (scaleBenchResult, error) {
	const (
		tasks   = 10000
		workers = 500
	)
	start := time.Now()
	eng := simclock.NewEngine(experiments.SimStart)
	m := wq.NewMaster(eng, nil)
	for w := 0; w < workers; w++ {
		if err := m.AddWorker(fmt.Sprintf("w%d", w), resources.New(4, 16384, 100000)); err != nil {
			return scaleBenchResult{}, err
		}
	}
	rng := simclock.NewRNG(seed)
	for t := 0; t < tasks; t++ {
		m.Submit(wq.TaskSpec{
			Category:  "bench",
			Resources: resources.New(1, 1024, 100),
			Profile: wq.Profile{
				ExecDuration: time.Duration(rng.Jitter(float64(5*time.Minute), 0.8)),
				UsedCPUMilli: 900,
				UsedMemoryMB: 512,
			},
		})
	}
	eng.Run()
	if m.CompletedCount() != tasks {
		return scaleBenchResult{}, fmt.Errorf("scale dispatch completed %d of %d", m.CompletedCount(), tasks)
	}
	return scaleBenchResult{
		Name:    "ScaleDispatch",
		WallMS:  float64(time.Since(start)) / float64(time.Millisecond),
		Tasks:   tasks,
		Workers: workers,
		Events:  eng.Processed(),
	}, nil
}

// benchScaleSweep times the init-latency sweep (eight simulations)
// under the given harness width (0 = GOMAXPROCS, 1 = serial).
func benchScaleSweep(name string, seed int64, width int) (scaleBenchResult, error) {
	means := []time.Duration{
		30 * time.Second, 60 * time.Second, 140 * time.Second, 400 * time.Second,
	}
	old := experiments.MaxParallel
	experiments.MaxParallel = width
	defer func() { experiments.MaxParallel = old }()
	start := time.Now()
	rep, err := experiments.SweepInitLatency(seed, means...)
	if err != nil {
		return scaleBenchResult{}, err
	}
	return scaleBenchResult{
		Name:   name,
		WallMS: float64(time.Since(start)) / float64(time.Millisecond),
		Rows:   len(rep.Rows),
	}, nil
}

// fixedEstimator is a static per-category table implementing
// wq.Estimator for the Algorithm 1 benchmark snapshot.
type fixedEstimator struct {
	res map[string]resources.Vector
	dur map[string]time.Duration
}

func (e *fixedEstimator) EstimateResources(cat string) (resources.Vector, bool) {
	v, ok := e.res[cat]
	return v, ok
}

func (e *fixedEstimator) EstimateExecTime(cat string) (time.Duration, bool) {
	d, ok := e.dur[cat]
	return d, ok
}

// estimateScaleInput mirrors internal/core's BenchmarkEstimateScale
// snapshot: 1000 workers each running one long task, 10000 waiting
// tasks in category blocks of 50 (four estimator-known categories, one
// declared-resources block, one unmeasured probe category).
func estimateScaleInput() core.EstimateInput {
	nodeCap := resources.New(3, 12288, 100000)
	in := core.EstimateInput{
		Now:            experiments.SimStart,
		InitTime:       160 * time.Second,
		DefaultCycle:   30 * time.Second,
		WorkerTemplate: nodeCap,
		Estimator: &fixedEstimator{
			res: map[string]resources.Vector{
				"c0": resources.New(1, 3800, 0),
				"c1": resources.New(1, 3800, 0),
				"c2": resources.New(1, 3800, 0),
				"c3": resources.New(1, 3800, 0),
			},
			dur: map[string]time.Duration{
				"c0": 200 * time.Second,
				"c1": 300 * time.Second,
				"c2": 400 * time.Second,
				"c3": 500 * time.Second,
				"lr": 300 * time.Second,
			},
		},
	}
	alloc := resources.New(1, 3800, 0)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("w%d", i)
		in.Workers = append(in.Workers, core.WorkerInfo{ID: id, Capacity: nodeCap})
		in.Running = append(in.Running, wq.Task{
			TaskSpec:  wq.TaskSpec{Category: "lr"},
			WorkerID:  id,
			StartedAt: experiments.SimStart.Add(-time.Duration(i%300) * time.Second),
			Allocated: alloc,
		})
	}
	for i := 0; i < 10000; i++ {
		t := wq.Task{}
		switch (i / 50) % 6 {
		case 0, 1, 2, 3:
			t.Category = fmt.Sprintf("c%d", (i/50)%6)
		case 4:
			t.Category = "c0"
			t.Resources = resources.New(2, 2048, 0)
		case 5:
			t.Category = "probe"
		}
		in.Waiting = append(in.Waiting, t)
	}
	return in
}

// benchEstimatePair times the grouped planner against the retained
// per-task reference on the same snapshot, and verifies the two return
// the same Decision while at it.
func benchEstimatePair() ([]scaleBenchResult, error) {
	in := estimateScaleInput()
	var p core.Planner
	p.EstimateScale(in) // warm the reusable scratch state
	const iters = 20
	start := time.Now()
	var grouped core.Decision
	for i := 0; i < iters; i++ {
		grouped = p.EstimateScale(in)
	}
	groupedMS := float64(time.Since(start)) / float64(time.Millisecond) / iters

	start = time.Now()
	naive := core.ReferenceEstimateScale(in)
	naiveMS := float64(time.Since(start)) / float64(time.Millisecond)

	if grouped != naive {
		return nil, fmt.Errorf("estimate divergence: grouped %+v, reference %+v", grouped, naive)
	}
	return []scaleBenchResult{
		{Name: "EstimateScale", WallMS: groupedMS, Tasks: len(in.Waiting), Workers: len(in.Workers), Speedup: naiveMS / groupedMS},
		{Name: "EstimateScaleNaive", WallMS: naiveMS, Tasks: len(in.Waiting), Workers: len(in.Workers)},
	}, nil
}

// benchKubesimChurnPair drives the 2000-node, 4000-pod-churn scenario
// through the cluster's public API, once with the indexed control
// plane and once with the naive reference paths. The fixture is always
// built with the indexed paths (a naive mass placement at this scale
// takes minutes and is setup, not the thing measured); the mode is
// switched just before the timed churn rounds.
func benchKubesimChurnPair(seed int64) ([]scaleBenchResult, error) {
	const (
		nodes    = 2000
		resident = 4000
		rounds   = 4
		churn    = 1000
	)
	run := func(naive bool) (float64, error) {
		eng := simclock.NewEngine(experiments.SimStart)
		c := kubesim.NewCluster(eng, kubesim.Config{
			InitialNodes: nodes,
			MinNodes:     nodes,
			MaxNodes:     nodes,
			Seed:         seed,
		})
		defer c.Stop()
		spec := func(name string) kubesim.PodSpec {
			return kubesim.PodSpec{Name: name, Image: "wq-worker", Resources: resources.New(1, 1024, 100)}
		}
		for i := 0; i < resident; i++ {
			if _, err := c.CreatePod(spec(fmt.Sprintf("resident-%d", i))); err != nil {
				return 0, err
			}
		}
		eng.RunFor(2 * time.Second) // one scheduler sweep binds the fleet
		if n := pendingUnboundCount(c); n != 0 {
			return 0, fmt.Errorf("%d residents unschedulable after setup", n)
		}
		c.SetNaiveScheduling(naive)

		start := time.Now()
		podN := 0
		for r := 0; r < rounds; r++ {
			for _, victim := range frontVictims(c, churn) {
				if err := c.DeletePod(victim); err != nil {
					return 0, err
				}
			}
			for i := 0; i < churn; i++ {
				podN++
				if _, err := c.CreatePod(spec(fmt.Sprintf("churn-%d", podN))); err != nil {
					return 0, err
				}
			}
			eng.RunFor(2 * time.Second)
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		if n := pendingUnboundCount(c); n != 0 {
			return 0, fmt.Errorf("%d churn pods unschedulable", n)
		}
		return ms, nil
	}

	indexedMS, err := run(false)
	if err != nil {
		return nil, err
	}
	naiveMS, err := run(true)
	if err != nil {
		return nil, err
	}
	return []scaleBenchResult{
		{Name: "KubesimChurn", WallMS: indexedMS, Tasks: rounds * churn, Nodes: nodes, Speedup: naiveMS / indexedMS},
		{Name: "KubesimChurnNaive", WallMS: naiveMS, Tasks: rounds * churn, Nodes: nodes},
	}, nil
}

// frontVictims picks n pods bound to the lowest-indexed nodes, so the
// freed capacity sits at the front of the first-fit order and the
// churn reaches a steady state round after round.
func frontVictims(c *kubesim.Cluster, n int) []string {
	byNode := make(map[string][]string)
	for _, p := range c.ListPods(nil) {
		if p.NodeName != "" && !p.Terminal() {
			byNode[p.NodeName] = append(byNode[p.NodeName], p.Name)
		}
	}
	victims := make([]string, 0, n)
	for _, node := range c.Nodes() {
		for _, name := range byNode[node.Name] {
			if len(victims) == n {
				return victims
			}
			victims = append(victims, name)
		}
	}
	return victims
}

// pendingUnboundCount counts pods still waiting for a node.
func pendingUnboundCount(c *kubesim.Cluster) int {
	n := 0
	for _, p := range c.ListPods(nil) {
		if p.Phase == kubesim.PodPending && p.NodeName == "" {
			n++
		}
	}
	return n
}
