package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"hta/internal/experiments"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// scaleBenchFile is where -json writes the scale-benchmark results.
const scaleBenchFile = "BENCH_1.json"

// scaleBenchResult is one scale benchmark's wall-clock measurement.
type scaleBenchResult struct {
	Name    string  `json:"name"`
	WallMS  float64 `json:"wall_ms"`
	Tasks   int     `json:"tasks,omitempty"`
	Workers int     `json:"workers,omitempty"`
	Rows    int     `json:"rows,omitempty"`
	Events  uint64  `json:"events,omitempty"`
}

type scaleBenchReport struct {
	Seed       int64              `json:"seed"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Benchmarks []scaleBenchResult `json:"benchmarks"`
}

// runScaleBench executes the two scale benchmarks outside the testing
// framework — the 10k-task dispatch storm and the parallel-vs-serial
// experiment sweep — and writes their wall-clock results to
// BENCH_1.json.
func runScaleBench(seed int64) error {
	rep := scaleBenchReport{Seed: seed, GoMaxProcs: runtime.GOMAXPROCS(0)}

	dispatch, err := benchScaleDispatch(seed)
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, dispatch)

	parallelSweep, err := benchScaleSweep("ScaleSweepParallel", seed, 0)
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, parallelSweep)

	serialSweep, err := benchScaleSweep("ScaleSweepSerial", seed, 1)
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, serialSweep)

	f, err := os.Create(scaleBenchFile)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	fmt.Printf("scale-benchmark results written to %s\n", scaleBenchFile)
	return nil
}

// benchScaleDispatch mirrors internal/wq's BenchmarkScaleDispatch:
// 10k known-size tasks over 500 4-core workers with jittered
// durations, so completions arrive as a stream of single events.
func benchScaleDispatch(seed int64) (scaleBenchResult, error) {
	const (
		tasks   = 10000
		workers = 500
	)
	start := time.Now()
	eng := simclock.NewEngine(experiments.SimStart)
	m := wq.NewMaster(eng, nil)
	for w := 0; w < workers; w++ {
		if err := m.AddWorker(fmt.Sprintf("w%d", w), resources.New(4, 16384, 100000)); err != nil {
			return scaleBenchResult{}, err
		}
	}
	rng := simclock.NewRNG(seed)
	for t := 0; t < tasks; t++ {
		m.Submit(wq.TaskSpec{
			Category:  "bench",
			Resources: resources.New(1, 1024, 100),
			Profile: wq.Profile{
				ExecDuration: time.Duration(rng.Jitter(float64(5*time.Minute), 0.8)),
				UsedCPUMilli: 900,
				UsedMemoryMB: 512,
			},
		})
	}
	eng.Run()
	if m.CompletedCount() != tasks {
		return scaleBenchResult{}, fmt.Errorf("scale dispatch completed %d of %d", m.CompletedCount(), tasks)
	}
	return scaleBenchResult{
		Name:    "ScaleDispatch",
		WallMS:  float64(time.Since(start)) / float64(time.Millisecond),
		Tasks:   tasks,
		Workers: workers,
		Events:  eng.Processed(),
	}, nil
}

// benchScaleSweep times the init-latency sweep (eight simulations)
// under the given harness width (0 = GOMAXPROCS, 1 = serial).
func benchScaleSweep(name string, seed int64, width int) (scaleBenchResult, error) {
	means := []time.Duration{
		30 * time.Second, 60 * time.Second, 140 * time.Second, 400 * time.Second,
	}
	old := experiments.MaxParallel
	experiments.MaxParallel = width
	defer func() { experiments.MaxParallel = old }()
	start := time.Now()
	rep, err := experiments.SweepInitLatency(seed, means...)
	if err != nil {
		return scaleBenchResult{}, err
	}
	return scaleBenchResult{
		Name:   name,
		WallMS: float64(time.Since(start)) / float64(time.Millisecond),
		Rows:   len(rep.Rows),
	}, nil
}
