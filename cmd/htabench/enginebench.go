package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"hta/internal/experiments"
	"hta/internal/netsim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// engineBenchFile is where -json writes the event-core scaling
// results: the lane-sharded engine against the retained reference
// core, the 100k-worker dispatch and link cells, and the E-H
// 50k/100k fleet extension.
const engineBenchFile = "BENCH_6.json"

// engineBenchRow is one paired engine measurement or one scale cell.
type engineBenchRow struct {
	Name      string  `json:"name"`
	Events    int     `json:"events,omitempty"`
	Tasks     int     `json:"tasks,omitempty"`
	Workers   int     `json:"workers,omitempty"`
	Transfers int     `json:"transfers,omitempty"`
	RuntimeS  float64 `json:"runtime_s,omitempty"`
	WallMS    float64 `json:"wall_ms,omitempty"`
	// Speedup is indexed-vs-reference for paired rows.
	Speedup float64 `json:"speedup_vs_reference,omitempty"`
}

type engineBenchReport struct {
	Seed       int64            `json:"seed"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Benchmarks []engineBenchRow `json:"benchmarks"`
}

// runEngineBench measures the lane-sharded engine against the
// retained reference core on identical workloads — single-event
// churn, batch scheduling, and the full dispatch storm — then runs
// the 100k-worker / 1M-task headline cells and the E-H 50k/100k
// sweep, writing everything to BENCH_6.json.
func runEngineBench(seed int64) error {
	rep := engineBenchReport{Seed: seed, GoMaxProcs: runtime.GOMAXPROCS(0)}

	pair, err := benchEngineThroughputPair(seed)
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, pair...)

	dispatch, err := benchScaleDispatchPair(seed)
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, dispatch...)

	link, err := benchLinkScale100k()
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, link)

	start := time.Now()
	sweep, err := experiments.IOScaleEHScale(seed)
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, engineBenchRow{
		Name:   "IOScaleEHScale",
		WallMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
	for _, row := range sweep.Rows {
		rep.Benchmarks = append(rep.Benchmarks, engineBenchRow{
			Name:     fmt.Sprintf("EH/%s/W=%d", row.Scaler, row.Workers),
			Workers:  row.Workers,
			Tasks:    row.Tasks,
			RuntimeS: row.Runtime.Seconds(),
		})
	}

	f, err := os.Create(engineBenchFile)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	fmt.Printf("engine-benchmark results written to %s\n", engineBenchFile)
	return nil
}

// bestOfRuns is how many times each paired wall-clock measurement is
// repeated; the fastest run is reported. One-shot walls on a shared
// machine wobble enough (±30% observed) that a speedup dividing two
// of them is mostly noise; the minimum of three is stable.
const bestOfRuns = 3

// bestOf repeats a measurement returning (wall ms, simulated outcome)
// and keeps the fastest wall, requiring the simulated outcome to be
// identical across repeats.
func bestOf[T comparable](run func() (float64, T, error)) (float64, T, error) {
	var best float64
	var outcome T
	for i := 0; i < bestOfRuns; i++ {
		ms, out, err := run()
		if err != nil {
			return 0, outcome, err
		}
		if i == 0 {
			best, outcome = ms, out
			continue
		}
		if out != outcome {
			return 0, outcome, fmt.Errorf("repeat %d diverges: %v != %v", i, out, outcome)
		}
		if ms < best {
			best = ms
		}
	}
	return best, outcome, nil
}

// benchEngineThroughputPair mirrors internal/simclock's
// BenchmarkEngineEventThroughput and BenchmarkEngineBatchThroughput
// once per core: a churn of self-rescheduling timers, and the same
// event count issued through AfterBatchN. Both cores must fire every
// event and land on the same virtual instant before the speedup
// counts.
func benchEngineThroughputPair(seed int64) ([]engineBenchRow, error) {
	const (
		timers = 4096
		events = 2_000_000
		batch  = 64
	)
	single := func(reference bool) (float64, time.Time, error) {
		start := time.Now()
		eng := simclock.NewEngine(experiments.SimStart)
		if reference {
			eng = simclock.NewReferenceEngine(experiments.SimStart)
		}
		rng := simclock.NewRNG(seed)
		fired := 0
		var tick func()
		tick = func() {
			fired++
			if fired+eng.Pending() < events {
				eng.After(time.Duration(rng.Jitter(float64(time.Second), 0.5)), "tick", tick)
			}
		}
		for i := 0; i < timers; i++ {
			eng.After(time.Duration(rng.Jitter(float64(time.Second), 0.5)), "tick", tick)
		}
		eng.Run()
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		if fired != events {
			return 0, time.Time{}, fmt.Errorf("engine churn fired %d of %d (reference=%v)", fired, events, reference)
		}
		return ms, eng.Now(), nil
	}
	batched := func(reference bool) (float64, time.Time, error) {
		start := time.Now()
		eng := simclock.NewEngine(experiments.SimStart)
		if reference {
			eng = simclock.NewReferenceEngine(experiments.SimStart)
		}
		lane := eng.NewLane("bench")
		rng := simclock.NewRNG(seed)
		fired := 0
		var wave func()
		wave = func() {
			fired++
			if fired%batch != 0 || fired >= events {
				return
			}
			eng.AfterBatchN(time.Duration(rng.Jitter(float64(time.Second), 0.5)), lane, "wave", batch, wave)
		}
		eng.AfterBatchN(0, lane, "wave", batch, wave)
		eng.Run()
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		if fired != events {
			return 0, time.Time{}, fmt.Errorf("engine batch fired %d of %d (reference=%v)", fired, events, reference)
		}
		return ms, eng.Now(), nil
	}
	var rows []engineBenchRow
	for _, b := range []struct {
		name string
		run  func(bool) (float64, time.Time, error)
	}{
		{"EngineEventThroughput", single},
		{"EngineBatchThroughput", batched},
	} {
		run := b.run
		indexedMS, indexedEnd, err := bestOf(func() (float64, time.Time, error) { return run(false) })
		if err != nil {
			return nil, err
		}
		referenceMS, referenceEnd, err := bestOf(func() (float64, time.Time, error) { return run(true) })
		if err != nil {
			return nil, err
		}
		if !indexedEnd.Equal(referenceEnd) {
			return nil, fmt.Errorf("%s: final instant diverges: indexed %v, reference %v",
				b.name, indexedEnd, referenceEnd)
		}
		rows = append(rows,
			engineBenchRow{Name: b.name, Events: events, WallMS: indexedMS, Speedup: referenceMS / indexedMS},
			engineBenchRow{Name: b.name + "Reference", Events: events, WallMS: referenceMS},
		)
	}
	return rows, nil
}

// runDispatchStorm mirrors internal/wq's BenchmarkScaleDispatch: a
// submit → dispatch → complete storm of known-size tasks over 4-core
// workers. reference selects the retained engine core and the
// retained linear placement scan together — the pre-rewrite
// configuration.
func runDispatchStorm(seed int64, reference bool, tasks, workers int) (float64, time.Duration, error) {
	start := time.Now()
	eng := simclock.NewEngine(experiments.SimStart)
	if reference {
		eng = simclock.NewReferenceEngine(experiments.SimStart)
	}
	m := wq.NewMaster(eng, nil)
	m.SetNaivePlacement(reference)
	for w := 0; w < workers; w++ {
		if err := m.AddWorker(fmt.Sprintf("w%d", w), resources.New(4, 16384, 100000)); err != nil {
			return 0, 0, err
		}
	}
	rng := simclock.NewRNG(seed)
	for t := 0; t < tasks; t++ {
		d := time.Duration(rng.Jitter(float64(5*time.Minute), 0.8))
		m.Submit(wq.TaskSpec{
			Category:  "bench",
			Resources: resources.New(1, 1024, 100),
			Profile:   wq.Profile{ExecDuration: d, UsedCPUMilli: 900, UsedMemoryMB: 512},
		})
	}
	eng.Run()
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	if m.CompletedCount() != tasks {
		return 0, 0, fmt.Errorf("dispatch storm completed %d of %d (reference=%v)", m.CompletedCount(), tasks, reference)
	}
	return ms, eng.Elapsed(), nil
}

// benchScaleDispatchPair runs the 10k-task storm on both cores
// (asserting the simulations reach the same makespan) and the
// 1M-task / 100k-worker headline cell on the lane-sharded core.
func benchScaleDispatchPair(seed int64) ([]engineBenchRow, error) {
	indexedMS, indexedSpan, err := bestOf(func() (float64, time.Duration, error) {
		return runDispatchStorm(seed, false, 10_000, 500)
	})
	if err != nil {
		return nil, err
	}
	referenceMS, referenceSpan, err := bestOf(func() (float64, time.Duration, error) {
		return runDispatchStorm(seed, true, 10_000, 500)
	})
	if err != nil {
		return nil, err
	}
	if indexedSpan != referenceSpan {
		return nil, fmt.Errorf("dispatch makespan diverges: indexed %v, reference %v", indexedSpan, referenceSpan)
	}
	bigMS, bigSpan, err := runDispatchStorm(seed, false, 1_000_000, 100_000)
	if err != nil {
		return nil, err
	}
	return []engineBenchRow{
		{Name: "ScaleDispatch", Tasks: 10_000, Workers: 500, RuntimeS: indexedSpan.Seconds(),
			WallMS: indexedMS, Speedup: referenceMS / indexedMS},
		{Name: "ScaleDispatchReference", Tasks: 10_000, Workers: 500, RuntimeS: referenceSpan.Seconds(),
			WallMS: referenceMS},
		{Name: "ScaleDispatch100k", Tasks: 1_000_000, Workers: 100_000, RuntimeS: bigSpan.Seconds(),
			WallMS: bigMS},
	}, nil
}

// benchLinkScale100k runs the netsim headline cell: 100k concurrent
// transfers with churn to 1M on one link (the 10k pair lives in
// BENCH_5.json).
func benchLinkScale100k() (engineBenchRow, error) {
	const (
		width = 100_000
		total = 1_000_000
	)
	start := time.Now()
	eng := simclock.NewEngine(experiments.SimStart)
	l := netsim.NewLink(eng, 1000, 0)
	started := 0
	var startOne func()
	startOne = func() {
		size := float64(started%97)*3.5 + 1
		started++
		l.Start(size, func() {
			if started < total {
				startOne()
			}
		})
	}
	for i := 0; i < width; i++ {
		startOne()
	}
	eng.Run()
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	if s := l.Stats(); s.Completed != total {
		return engineBenchRow{}, fmt.Errorf("link scale 100k completed %d of %d", s.Completed, total)
	}
	return engineBenchRow{Name: "LinkScale100k", Transfers: total, WallMS: ms}, nil
}
