package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hta/internal/experiments"
)

// streamBenchFile is where -json writes the E-I open-system streaming
// summary.
const streamBenchFile = "BENCH_7.json"

// streamBenchRow mirrors one E-I table cell for machine consumption.
type streamBenchRow struct {
	Autoscaler  string  `json:"autoscaler"`
	Submitted   int     `json:"submitted"`
	Completed   int     `json:"completed"`
	Quarantined int     `json:"quarantined"`
	Shed        int     `json:"shed"`
	ShedRate    float64 `json:"shed_rate"`
	P50S        float64 `json:"sojourn_p50_s"`
	P99S        float64 `json:"sojourn_p99_s"`
	Actions     int     `json:"scaling_actions"`
	Panics      int     `json:"panics"`
	WasteCoreS  float64 `json:"waste_core_s"`
}

type streamBenchReport struct {
	Seed    int64            `json:"seed"`
	WallMS  float64          `json:"wall_ms"`
	Tasks   int              `json:"tasks"`
	WindowS float64          `json:"window_s"`
	Rows    []streamBenchRow `json:"rows"`
}

// runStreamBench executes experiment E-I (the open-system trace-driven
// day under HPA, HTA, and HTA-panic) and writes the summary to
// BENCH_7.json.
func runStreamBench(seed int64) error {
	start := time.Now()
	ei, err := experiments.StreamEI(seed)
	if err != nil {
		return err
	}
	rep := streamBenchReport{
		Seed:    seed,
		WallMS:  float64(time.Since(start)) / float64(time.Millisecond),
		Tasks:   ei.Tasks,
		WindowS: ei.Window.Seconds(),
	}
	for _, row := range ei.Rows {
		rep.Rows = append(rep.Rows, streamBenchRow{
			Autoscaler:  row.Autoscaler,
			Submitted:   row.Submitted,
			Completed:   row.Completed,
			Quarantined: row.Quarantined,
			Shed:        row.Shed,
			ShedRate:    row.ShedRate,
			P50S:        row.P50.Seconds(),
			P99S:        row.P99.Seconds(),
			Actions:     row.Actions,
			Panics:      row.Panics,
			WasteCoreS:  row.Waste,
		})
	}
	f, err := os.Create(streamBenchFile)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	fmt.Printf("stream E-I results written to %s\n", streamBenchFile)
	return nil
}
