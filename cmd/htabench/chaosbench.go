package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hta/internal/experiments"
)

// chaosBenchFile is where -json writes the E-F fault-injection summary.
const chaosBenchFile = "BENCH_2.json"

// chaosBenchRow mirrors one E-F table row for machine consumption.
type chaosBenchRow struct {
	Autoscaler   string  `json:"autoscaler"`
	PreemptMeanS float64 `json:"preempt_mean_s"` // 0 = fault-free baseline
	RuntimeS     float64 `json:"runtime_s"`
	Preemptions  int     `json:"preemptions"`
	WorkerKills  int     `json:"worker_kills"`
	Requeues     int     `json:"requeues"`
	FastAborts   int     `json:"fast_aborts"`
	Quarantined  int     `json:"quarantined"`
	Submitted    int     `json:"submitted"`
	Completed    int     `json:"completed"`
	LostCoreSec  float64 `json:"lost_core_s"`
	Goodput      float64 `json:"goodput"`
}

type chaosBenchReport struct {
	Seed   int64           `json:"seed"`
	WallMS float64         `json:"wall_ms"`
	Rows   []chaosBenchRow `json:"rows"`
}

// runChaosBench executes experiment E-F (multistage BLAST on
// preemptible nodes under three autoscalers) and writes the summary
// to BENCH_2.json.
func runChaosBench(seed int64) error {
	start := time.Now()
	ef, err := experiments.ChaosEF(seed)
	if err != nil {
		return err
	}
	rep := chaosBenchReport{
		Seed:   seed,
		WallMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	for _, row := range ef.Rows {
		rep.Rows = append(rep.Rows, chaosBenchRow{
			Autoscaler:   row.Autoscaler,
			PreemptMeanS: row.PreemptMean.Seconds(),
			RuntimeS:     row.Runtime.Seconds(),
			Preemptions:  row.Preemptions,
			WorkerKills:  row.WorkerKills,
			Requeues:     row.Requeues,
			FastAborts:   row.FastAborts,
			Quarantined:  row.Quarantined,
			Submitted:    row.Submitted,
			Completed:    row.Completed,
			LostCoreSec:  row.LostCoreSec,
			Goodput:      row.Goodput,
		})
	}
	f, err := os.Create(chaosBenchFile)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	fmt.Printf("chaos E-F results written to %s\n", chaosBenchFile)
	return nil
}
