package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"hta/internal/experiments"
	"hta/internal/netsim"
	"hta/internal/simclock"
)

// ioBenchFile is where -json writes the data-plane scaling results:
// the E-H fleet sweep and the paired indexed-vs-reference link
// benchmark.
const ioBenchFile = "BENCH_5.json"

// ioBenchRow is one E-H cell or one link-benchmark measurement.
type ioBenchRow struct {
	Name        string  `json:"name"`
	Scaler      string  `json:"scaler,omitempty"`
	Workers     int     `json:"workers,omitempty"`
	Tasks       int     `json:"tasks,omitempty"`
	RuntimeS    float64 `json:"runtime_s,omitempty"`
	Completed   int     `json:"completed,omitempty"`
	Submitted   int     `json:"submitted,omitempty"`
	PeakWorkers int     `json:"peak_workers,omitempty"`
	AvgMBps     float64 `json:"avg_mbps,omitempty"`
	Transfers   int     `json:"transfers,omitempty"`
	WallMS      float64 `json:"wall_ms,omitempty"`
	// Speedup is indexed-vs-reference for the paired link rows.
	Speedup float64 `json:"speedup_vs_reference,omitempty"`
}

type ioBenchReport struct {
	Seed       int64        `json:"seed"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Benchmarks []ioBenchRow `json:"benchmarks"`
}

// runIOBench executes the E-H fleet sweep (1k/5k/10k workers, HTA vs
// pinned HPA) and the 10k-concurrent-transfer link benchmark against
// both netsim implementations, writing the results to BENCH_5.json.
func runIOBench(seed int64) error {
	rep := ioBenchReport{Seed: seed, GoMaxProcs: runtime.GOMAXPROCS(0)}

	start := time.Now()
	sweep, err := experiments.IOScaleEH(seed)
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, ioBenchRow{
		Name:   "IOScaleEH",
		WallMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
	for _, row := range sweep.Rows {
		rep.Benchmarks = append(rep.Benchmarks, ioBenchRow{
			Name:        fmt.Sprintf("EH/%s/W=%d", row.Scaler, row.Workers),
			Scaler:      row.Scaler,
			Workers:     row.Workers,
			Tasks:       row.Tasks,
			RuntimeS:    row.Runtime.Seconds(),
			Completed:   row.Completed,
			Submitted:   row.Submitted,
			PeakWorkers: row.PeakWorkers,
			AvgMBps:     row.AvgMBps,
		})
	}

	link, err := benchLinkScalePair()
	if err != nil {
		return err
	}
	rep.Benchmarks = append(rep.Benchmarks, link...)

	f, err := os.Create(ioBenchFile)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	fmt.Printf("io-benchmark results written to %s\n", ioBenchFile)
	return nil
}

// benchLinkScalePair mirrors internal/netsim's BenchmarkLinkScale —
// ramp a link to 10k concurrent transfers, then churn to 20k total —
// once per implementation, and verifies the two simulations reach the
// same outcome before reporting the speedup.
func benchLinkScalePair() ([]ioBenchRow, error) {
	const (
		width = 10000
		total = 20000
	)
	run := func(reference bool) (float64, netsim.Stats, error) {
		start := time.Now()
		eng := simclock.NewEngine(experiments.SimStart)
		var l *netsim.Link
		if reference {
			l = netsim.NewReferenceLink(eng, 1000, 0)
		} else {
			l = netsim.NewLink(eng, 1000, 0)
		}
		started := 0
		var startOne func()
		startOne = func() {
			size := float64(started%97)*3.5 + 1
			started++
			l.Start(size, func() {
				if started < total {
					startOne()
				}
			})
		}
		for i := 0; i < width; i++ {
			startOne()
		}
		eng.Run()
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		s := l.Stats()
		if s.Completed != total {
			return 0, s, fmt.Errorf("link scale completed %d of %d (reference=%v)", s.Completed, total, reference)
		}
		return ms, s, nil
	}
	indexedMS, indexedStats, err := run(false)
	if err != nil {
		return nil, err
	}
	referenceMS, referenceStats, err := run(true)
	if err != nil {
		return nil, err
	}
	// Equal simulated outcomes: the speedup only counts if both
	// implementations moved the same bytes over the same busy time.
	if math.Abs(indexedStats.DeliveredMB-referenceStats.DeliveredMB) > 1e-6*indexedStats.DeliveredMB {
		return nil, fmt.Errorf("delivered MB diverges: indexed %v, reference %v",
			indexedStats.DeliveredMB, referenceStats.DeliveredMB)
	}
	if diff := indexedStats.BusyTime - referenceStats.BusyTime; diff < -time.Duration(total) || diff > time.Duration(total) {
		return nil, fmt.Errorf("busy time diverges: indexed %v, reference %v",
			indexedStats.BusyTime, referenceStats.BusyTime)
	}
	return []ioBenchRow{
		{
			Name: "LinkScale", Transfers: total, WallMS: indexedMS,
			AvgMBps: indexedStats.AvgBandwidth, Speedup: referenceMS / indexedMS,
		},
		{
			Name: "LinkScaleReference", Transfers: total, WallMS: referenceMS,
			AvgMBps: referenceStats.AvgBandwidth,
		},
	}, nil
}
