package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hta/internal/experiments"
)

// recoveryBenchFile is where -json writes the E-G crash-recovery
// summary.
const recoveryBenchFile = "BENCH_4.json"

// recoveryBenchRow mirrors one E-G table row for machine consumption.
type recoveryBenchRow struct {
	Component   string  `json:"component"` // "none" = no-crash baseline
	Planned     int     `json:"planned_kills"`
	Kills       int     `json:"delivered_kills"`
	RuntimeS    float64 `json:"runtime_s"`
	OverheadPct float64 `json:"overhead_pct"`
	Rescued     int     `json:"rescued_tasks"`
	Fenced      int     `json:"fenced_attempts"`
	Requeued    int     `json:"requeued_unrescued"`
	Replayed    int     `json:"replayed_records"`
	Skipped     int     `json:"skipped_rules"`
	Corrections int     `json:"reconcile_corrections"`
	Requeues    int     `json:"requeues"`
	Quarantined int     `json:"quarantined"`
	Submitted   int     `json:"submitted"`
	Completed   int     `json:"completed"`
	Goodput     float64 `json:"goodput"`
}

type recoveryBenchReport struct {
	Seed      int64              `json:"seed"`
	WallMS    float64            `json:"wall_ms"`
	BaselineS float64            `json:"baseline_s"`
	Rows      []recoveryBenchRow `json:"rows"`
}

// runRecoveryBench executes experiment E-G (control-plane crash
// recovery on the multistage workflow) and writes the summary to
// BENCH_4.json.
func runRecoveryBench(seed int64) error {
	start := time.Now()
	eg, err := experiments.RecoveryEG(seed)
	if err != nil {
		return err
	}
	rep := recoveryBenchReport{
		Seed:      seed,
		WallMS:    float64(time.Since(start)) / float64(time.Millisecond),
		BaselineS: eg.Baseline.Seconds(),
	}
	for _, row := range eg.Rows {
		rep.Rows = append(rep.Rows, recoveryBenchRow{
			Component:   row.Component,
			Planned:     row.Planned,
			Kills:       row.Kills,
			RuntimeS:    row.Runtime.Seconds(),
			OverheadPct: row.OverheadPct,
			Rescued:     row.Rescued,
			Fenced:      row.Fenced,
			Requeued:    row.Requeued,
			Replayed:    row.Replayed,
			Skipped:     row.Skipped,
			Corrections: row.Corrections,
			Requeues:    row.Requeues,
			Quarantined: row.Quarantined,
			Submitted:   row.Submitted,
			Completed:   row.Completed,
			Goodput:     row.Goodput,
		})
	}
	f, err := os.Create(recoveryBenchFile)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	fmt.Printf("recovery E-G results written to %s\n", recoveryBenchFile)
	return nil
}
