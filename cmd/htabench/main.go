// Command htabench regenerates the paper's evaluation: every figure
// and table of "Autoscaling High-Throughput Workloads on Container
// Orchestrators" (CLUSTER 2020) plus the repository's own ablations,
// all on the simulated stack.
//
// Usage:
//
//	htabench [-seed N] [-runs fig2,fig4,fig6,fig10,fig11,ablations,chaos,recovery,io,ioscale,tenants,tenantchaos]
//	         [-json] [-cpuprofile FILE] [-memprofile FILE]
//
// The io run is experiment E-H — the Fig. 11 I/O-bound workload swept
// to 1k/5k/10k-worker fleets — and is not in the default set: its
// pinned-HPA cells simulate weeks of virtual time. Invoke it with
// -runs io. The ioscale run extends the sweep to the 50k/100k-worker
// fleets unlocked by the lane-sharded engine (months of virtual
// time; -runs ioscale).
//
// -json additionally runs the scale benchmarks (10k-task dispatch
// storm, parallel-vs-serial sweep, and the paired indexed-vs-naive
// control-plane benchmarks), writing their wall-clock results to
// BENCH_3.json, the E-F fault-injection experiment, writing its
// summary to BENCH_2.json, the E-G control-plane crash-recovery
// experiment, writing its summary to BENCH_4.json, and the E-H fleet
// sweep plus the paired indexed-vs-reference link benchmark, writing
// their results to BENCH_5.json, and the engine-core pairs (event
// churn, batch scheduling, dispatch storm) plus the 100k-worker
// headline cells and the E-H 50k/100k extension, writing their
// results to BENCH_6.json, and the E-I open-system streaming
// experiment (HPA vs HTA vs HTA-panic on the trace-driven day),
// writing its summary to BENCH_7.json, and the E-J multi-tenant
// arbitration experiment (fair-share vs quota vs a single shared
// autoscaler at 100 and 1000 tenants, plus the incremental-vs-
// reference arbiter-cycle cost pair), writing its summary to
// BENCH_8.json, and the E-K tenant fault-isolation experiment
// (tenant-master kills, an arbiter crash/restore, membership churn)
// plus the arbiter snapshot/restore round-trip probe, writing its
// summary to BENCH_9.json, and the memory-engine scale ladder (the
// dispatch cells up to 1M workers / 10M tasks, each with its heap
// trajectory: peak HeapAlloc, TotalAlloc, GC cycles, pause time),
// writing its results to BENCH_10.json; combine with -runs none to
// run only them, or with -runs scale to run only the memory-engine
// ladder.
// (BENCH_1.json is the pre-control-plane-scaling historical record.)
//
// -cpuprofile and -memprofile write pprof profiles covering whatever
// the invocation ran — the standard way to find the next control-plane
// hotspot.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hta/internal/experiments"
	"hta/internal/report"
)

func main() {
	os.Exit(run())
}

// run is main's body behind an exit code so the deferred profile
// writers fire on every path (os.Exit skips defers).
func run() int {
	seed := flag.Int64("seed", 1, "simulation seed")
	runs := flag.String("runs", "fig2,fig4,fig6,fig10,fig11,ablations,sweeps,stream,chaos,recovery",
		"comma-separated experiments to run")
	csvDir := flag.String("csv", "", "directory to export per-run CSV series into")
	htmlOut := flag.String("html", "", "write an HTML report with SVG charts to this file")
	jsonBench := flag.Bool("json", false,
		"run the scale benchmarks and write wall-clock results to "+scaleBenchFile)
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	selected := make(map[string]bool)
	for _, r := range strings.Split(*runs, ",") {
		selected[strings.TrimSpace(r)] = true
	}

	type experiment struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	all := []experiment{
		{"fig2", func() (fmt.Stringer, error) { return experiments.Fig2(*seed) }},
		{"fig4", func() (fmt.Stringer, error) { return experiments.Fig4(*seed) }},
		{"fig6", func() (fmt.Stringer, error) { return experiments.Fig6(10, *seed) }},
		{"fig10", func() (fmt.Stringer, error) { return experiments.Fig10(*seed) }},
		{"fig11", func() (fmt.Stringer, error) { return experiments.Fig11(*seed) }},
		{"ablations", runAblations(*seed)},
		{"sweeps", func() (fmt.Stringer, error) { return experiments.SweepInitLatency(*seed) }},
		{"stream", runStream(*seed)},
		{"chaos", func() (fmt.Stringer, error) { return experiments.ChaosEF(*seed) }},
		{"recovery", func() (fmt.Stringer, error) { return experiments.RecoveryEG(*seed) }},
		{"io", func() (fmt.Stringer, error) { return experiments.IOScaleEH(*seed) }},
		{"ioscale", func() (fmt.Stringer, error) { return experiments.IOScaleEHScale(*seed) }},
		{"tenants", func() (fmt.Stringer, error) { return experiments.TenantsEJ(*seed, 100) }},
		{"tenantchaos", func() (fmt.Stringer, error) { return experiments.TenantChaosEK(*seed) }},
	}

	var page *report.Page
	if *htmlOut != "" {
		page = report.NewPage("HTA reproduction — experiment report")
	}
	failed := false
	for _, ex := range all {
		if !selected[ex.name] {
			continue
		}
		start := time.Now()
		rep, err := ex.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", ex.name, err)
			failed = true
			continue
		}
		fmt.Printf("==== %s (simulated in %v) ====\n%s\n", ex.name, time.Since(start).Round(time.Millisecond), rep)
		if *csvDir != "" {
			if d, ok := rep.(interface{ WriteCSVs(string) error }); ok {
				if err := d.WriteCSVs(*csvDir); err != nil {
					fmt.Fprintf(os.Stderr, "%s: csv export: %v\n", ex.name, err)
					failed = true
				}
			}
		}
		if page != nil {
			if a, ok := rep.(experiments.PageAdder); ok {
				a.AddToPage(page)
			}
		}
	}
	if *jsonBench {
		if selected["scale"] {
			// -runs scale -json: just the memory-engine scale ladder
			// (BENCH_10.json) — the headline cells take ~1 min; the full
			// bench battery takes far longer.
			if err := runMemoryBench(*seed); err != nil {
				fmt.Fprintf(os.Stderr, "memory bench: %v\n", err)
				return 1
			}
			return 0
		}
		if err := runScaleBench(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "scale bench: %v\n", err)
			failed = true
		}
		if err := runChaosBench(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "chaos bench: %v\n", err)
			failed = true
		}
		if err := runRecoveryBench(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "recovery bench: %v\n", err)
			failed = true
		}
		if err := runIOBench(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "io bench: %v\n", err)
			failed = true
		}
		if err := runEngineBench(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "engine bench: %v\n", err)
			failed = true
		}
		if err := runStreamBench(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "stream bench: %v\n", err)
			failed = true
		}
		if err := runTenantBench(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "tenant bench: %v\n", err)
			failed = true
		}
		if err := runTenantChaosBench(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "tenant chaos bench: %v\n", err)
			failed = true
		}
		if err := runMemoryBench(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "memory bench: %v\n", err)
			failed = true
		}
	}
	if page != nil && !failed {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := page.Render(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
		f.Close()
		fmt.Printf("HTML report written to %s\n", *htmlOut)
	}
	if failed {
		return 1
	}
	return 0
}

// runStream bundles the two open-loop scenarios: S2 (diurnal stream,
// HTA vs HPA) and E-I (trace-driven day with morning spikes, adding
// the panic-mode cell and admission control).
func runStream(seed int64) func() (fmt.Stringer, error) {
	return func() (fmt.Stringer, error) {
		s2, err := experiments.Stream(seed)
		if err != nil {
			return nil, err
		}
		ei, err := experiments.StreamEI(seed)
		if err != nil {
			return nil, err
		}
		return streamCombined{s2: s2, ei: ei}, nil
	}
}

// streamCombined renders S2 then E-I and forwards S2's chart hook.
type streamCombined struct {
	s2 *experiments.StreamReport
	ei *experiments.StreamEIReport
}

func (c streamCombined) String() string { return c.s2.String() + "\n" + c.ei.String() }

func (c streamCombined) AddToPage(p *report.Page) { c.s2.AddToPage(p) }

func runAblations(seed int64) func() (fmt.Stringer, error) {
	return func() (fmt.Stringer, error) {
		var b strings.Builder
		a1, err := experiments.AblationFixedCycle(seed)
		if err != nil {
			return nil, err
		}
		b.WriteString(a1.String())
		b.WriteString("\n")
		a2, err := experiments.AblationNoCategories(seed)
		if err != nil {
			return nil, err
		}
		b.WriteString(a2.String())
		b.WriteString("\n")
		a3, err := experiments.AblationHPAStabilization(seed)
		if err != nil {
			return nil, err
		}
		b.WriteString(a3.String())
		b.WriteString("\n")
		a4, err := experiments.AblationQueueScaler(seed)
		if err != nil {
			return nil, err
		}
		b.WriteString(a4.String())
		b.WriteString("\n")
		a5, err := experiments.AblationDispatchPolicy(seed)
		if err != nil {
			return nil, err
		}
		b.WriteString(a5.String())
		return stringer{b.String()}, nil
	}
}

type stringer struct{ s string }

func (s stringer) String() string { return s.s }
