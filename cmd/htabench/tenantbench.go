package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hta/internal/arbiter"
	"hta/internal/experiments"
	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// tenantBenchFile is where -json writes the E-J multi-tenant summary.
const tenantBenchFile = "BENCH_8.json"

// tenantBenchRow mirrors one E-J cell for machine consumption.
type tenantBenchRow struct {
	Policy          string  `json:"policy"`
	Tenants         int     `json:"tenants"`
	Workers         int     `json:"workers"`
	Submitted       int     `json:"submitted"`
	Completed       int     `json:"completed"`
	Shed            int     `json:"shed"`
	MakespanP50S    float64 `json:"makespan_p50_s"`
	MakespanP99S    float64 `json:"makespan_p99_s"`
	MakespanMaxS    float64 `json:"makespan_max_s"`
	Jain            float64 `json:"jain"`
	Utilization     float64 `json:"utilization"`
	Cycles          int     `json:"cycles"`
	ReplansPerCycle float64 `json:"replans_per_cycle"`
	PodsCreated     int     `json:"pods_created"`
}

// tenantCycleCost is the arbiter-cycle microbenchmark pair: one
// steady-state planning pass at T tenants, incremental vs the retained
// full-replan reference.
type tenantCycleCost struct {
	Tenants       int     `json:"tenants"`
	IncrementalNS float64 `json:"incremental_ns_per_cycle"`
	ReferenceNS   float64 `json:"reference_ns_per_cycle"`
	Speedup       float64 `json:"speedup"`
}

type tenantBenchReport struct {
	Seed      int64             `json:"seed"`
	WallMS    float64           `json:"wall_ms"`
	Rows      []tenantBenchRow  `json:"rows"`
	CycleCost []tenantCycleCost `json:"arbiter_cycle_cost"`
}

// runTenantBench executes experiment E-J at T=100 and T=1000 and
// probes the arbiter-cycle cost, writing the summary to BENCH_8.json.
func runTenantBench(seed int64) error {
	start := time.Now()
	rep := tenantBenchReport{Seed: seed}
	for _, tenants := range []int{100, 1000} {
		ej, err := experiments.TenantsEJ(seed, tenants)
		if err != nil {
			return err
		}
		for _, row := range ej.Rows {
			rep.Rows = append(rep.Rows, tenantBenchRow{
				Policy:          row.Policy,
				Tenants:         row.Tenants,
				Workers:         row.Workers,
				Submitted:       row.Submitted,
				Completed:       row.Completed,
				Shed:            row.Shed,
				MakespanP50S:    row.MakespanP50.Seconds(),
				MakespanP99S:    row.MakespanP99.Seconds(),
				MakespanMaxS:    row.MakespanMax.Seconds(),
				Jain:            row.Jain,
				Utilization:     row.Utilization,
				Cycles:          row.Cycles,
				ReplansPerCycle: row.ReplansPerCycle(),
				PodsCreated:     row.PodsCreated,
			})
		}
	}
	for _, tenants := range []int{100, 1000} {
		cost, err := probeArbiterCycle(seed, tenants)
		if err != nil {
			return err
		}
		rep.CycleCost = append(rep.CycleCost, cost)
	}
	rep.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	f, err := os.Create(tenantBenchFile)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	fmt.Printf("tenant E-J results written to %s\n", tenantBenchFile)
	return nil
}

// probeArbiterCycle times steady-state planning passes — every tenant
// holding a queue of declared tasks, nothing changing between cycles —
// on the incremental path and the retained reference.
func probeArbiterCycle(seed int64, tenants int) (tenantCycleCost, error) {
	build := func() (*arbiter.Arbiter, error) {
		eng := simclock.NewEngine(time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC))
		cluster := kubesim.NewCluster(eng, kubesim.Config{
			InitialNodes: 1, MinNodes: 1, MaxNodes: 4, Seed: seed,
		})
		a := arbiter.New(eng, cluster, arbiter.Config{
			Cycle:        30 * time.Second,
			TotalWorkers: 4 * tenants,
		})
		for i := 0; i < tenants; i++ {
			ten, err := a.AddTenant(arbiter.TenantConfig{
				ID:     fmt.Sprintf("t%05d", i),
				Weight: 1 + i%3,
			})
			if err != nil {
				return nil, err
			}
			for j := 0; j < 8; j++ {
				ten.Master().Submit(wq.TaskSpec{
					Category:  fmt.Sprintf("cat%d", i%4),
					Resources: resources.Vector{MilliCPU: 870, MemoryMB: 1700},
					Profile:   wq.Profile{ExecDuration: time.Minute, UsedCPUMilli: 870, UsedMemoryMB: 1700},
				})
			}
		}
		a.PlanOnly() // warm the digests and scratch
		return a, nil
	}
	timeCycles := func(a *arbiter.Arbiter, rounds int) float64 {
		t0 := time.Now()
		for i := 0; i < rounds; i++ {
			a.PlanOnly()
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(rounds)
	}
	inc, err := build()
	if err != nil {
		return tenantCycleCost{}, err
	}
	ref, err := build()
	if err != nil {
		return tenantCycleCost{}, err
	}
	ref.SetNaiveArbitration(true)
	ref.PlanOnly() // warm the reference path too
	cost := tenantCycleCost{
		Tenants:       tenants,
		IncrementalNS: timeCycles(inc, 2000),
		ReferenceNS:   timeCycles(ref, 50),
	}
	if cost.IncrementalNS > 0 {
		cost.Speedup = cost.ReferenceNS / cost.IncrementalNS
	}
	return cost, nil
}
