package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hta/internal/arbiter"
	"hta/internal/experiments"
	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// tenantChaosBenchFile is where -json writes the E-K summary.
const tenantChaosBenchFile = "BENCH_9.json"

// tenantChaosBenchRow mirrors one E-K cell for machine consumption.
type tenantChaosBenchRow struct {
	Cell               string  `json:"cell"`
	MasterKills        int     `json:"master_kills"`
	ArbiterKills       int     `json:"arbiter_kills"`
	Joins              int     `json:"joins"`
	Leaves             int     `json:"leaves"`
	RuntimeS           float64 `json:"runtime_s"`
	MaxUntouchedDeltaS float64 `json:"max_untouched_delta_s"`
	IsolationSlackS    float64 `json:"isolation_slack_s"`
	Untouched          int     `json:"untouched"`
	Submitted          int     `json:"submitted"`
	Completed          int     `json:"completed"`
	Quarantined        int     `json:"quarantined"`
	Rescued            int     `json:"rescued"`
	Requeued           int     `json:"requeued"`
	Corrections        int     `json:"reconcile_corrections"`
	FencedDrains       int     `json:"fenced_drains"`
	TenantsRemoved     int     `json:"tenants_removed"`
	DowntimeS          float64 `json:"downtime_s"`
}

// arbiterRestoreCost is the crash-consistency microbenchmark: one
// full snapshot → crash → encode → decode → restore → reconcile round
// trip at T tenants with a warm pod fleet.
type arbiterRestoreCost struct {
	Tenants       int     `json:"tenants"`
	RestoreNS     float64 `json:"restore_ns_per_cycle"`
	SnapshotBytes int     `json:"snapshot_bytes"`
}

type tenantChaosBenchReport struct {
	Seed        int64                 `json:"seed"`
	WallMS      float64               `json:"wall_ms"`
	BaselineS   float64               `json:"baseline_s"`
	Isolated    bool                  `json:"isolated"`
	Rows        []tenantChaosBenchRow `json:"rows"`
	RestoreCost []arbiterRestoreCost  `json:"arbiter_restore_cost"`
}

// runTenantChaosBench executes experiment E-K at the smoke size and
// probes the arbiter snapshot/restore round trip at 100 and 1000
// tenants, writing the summary to BENCH_9.json.
func runTenantChaosBench(seed int64) error {
	start := time.Now()
	rep := tenantChaosBenchReport{Seed: seed}
	ek, err := experiments.TenantChaosEKWith(experiments.SmokeTenantChaosEKConfig(seed))
	if err != nil {
		return err
	}
	rep.BaselineS = ek.Baseline.Seconds()
	rep.Isolated = ek.Isolated()
	for _, row := range ek.Rows {
		rep.Rows = append(rep.Rows, tenantChaosBenchRow{
			Cell:               row.Cell,
			MasterKills:        row.MasterKills,
			ArbiterKills:       row.ArbiterKills,
			Joins:              row.Joins,
			Leaves:             row.Leaves,
			RuntimeS:           row.Runtime.Seconds(),
			MaxUntouchedDeltaS: row.MaxUntouchedDelta.Seconds(),
			IsolationSlackS:    row.IsolationSlack.Seconds(),
			Untouched:          row.Untouched,
			Submitted:          row.Submitted,
			Completed:          row.Completed,
			Quarantined:        row.Quarantined,
			Rescued:            row.Recovery.RescuedTasks,
			Requeued:           row.Recovery.RequeuedUnrescued,
			Corrections:        row.Recovery.ReconcileCorrections,
			FencedDrains:       row.FencedDrains,
			TenantsRemoved:     row.TenantsRemoved,
			DowntimeS:          row.Recovery.Downtime.Seconds(),
		})
	}
	for _, tenants := range []int{100, 1000} {
		cost, err := probeArbiterRestore(seed, tenants)
		if err != nil {
			return err
		}
		rep.RestoreCost = append(rep.RestoreCost, cost)
	}
	rep.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	f, err := os.Create(tenantChaosBenchFile)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	fmt.Printf("tenant E-K results written to %s\n", tenantChaosBenchFile)
	return nil
}

// probeArbiterRestore times the full crash-consistency round trip —
// Snapshot, Crash, codec both ways, Restore with its reconcile and
// adoption sweep — on a fleet warmed to a steady pod book.
func probeArbiterRestore(seed int64, tenants int) (arbiterRestoreCost, error) {
	eng := simclock.NewEngine(time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC))
	cluster := kubesim.NewCluster(eng, kubesim.Config{
		InitialNodes: 1, MinNodes: 1, MaxNodes: 4, Seed: seed,
	})
	a := arbiter.New(eng, cluster, arbiter.Config{
		Cycle:        30 * time.Second,
		TotalWorkers: 4 * tenants,
	})
	for i := 0; i < tenants; i++ {
		ten, err := a.AddTenant(arbiter.TenantConfig{
			ID:     fmt.Sprintf("t%05d", i),
			Weight: 1 + i%3,
		})
		if err != nil {
			return arbiterRestoreCost{}, err
		}
		for j := 0; j < 8; j++ {
			ten.Master().Submit(wq.TaskSpec{
				Category:  fmt.Sprintf("cat%d", i%4),
				Resources: resources.Vector{MilliCPU: 870, MemoryMB: 1700},
				Profile:   wq.Profile{ExecDuration: time.Minute, UsedCPUMilli: 870, UsedMemoryMB: 1700},
			})
		}
	}
	a.RunCycle() // book the worker-pod fleet
	a.RunCycle()
	const rounds = 20
	var snapBytes int
	t0 := time.Now()
	for i := 0; i < rounds; i++ {
		snap, ok := a.Crash()
		if !ok {
			return arbiterRestoreCost{}, fmt.Errorf("arbiter refused crash on round %d", i)
		}
		enc := snap.Encode()
		snapBytes = len(enc)
		dec, err := arbiter.DecodeSnapshot(enc)
		if err != nil {
			return arbiterRestoreCost{}, err
		}
		a.Restore(dec)
	}
	return arbiterRestoreCost{
		Tenants:       tenants,
		RestoreNS:     float64(time.Since(t0).Nanoseconds()) / rounds,
		SnapshotBytes: snapBytes,
	}, nil
}
