package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"hta/internal/experiments"
	"hta/internal/resources"
	"hta/internal/simclock"
	"hta/internal/wq"
)

// memoryBenchFile is where -json writes the memory-engine results:
// the headline dispatch cells re-run with heap telemetry, up to the
// 1M-worker / 10M-task cell the interned/packed hot tiers unlock.
const memoryBenchFile = "BENCH_10.json"

// memBenchRow is one scale cell with its memory trajectory: wall
// clock plus what the heap did while the cell ran. Peak heap is
// sampled from inside the simulation (a recurring engine timer reads
// runtime.MemStats every 10 simulated seconds), so it tracks the
// storm's actual high-water mark rather than whatever is live at
// exit; the remaining counters are deltas across the run.
type memBenchRow struct {
	Name     string  `json:"name"`
	Tasks    int     `json:"tasks,omitempty"`
	Workers  int     `json:"workers,omitempty"`
	Events   uint64  `json:"events,omitempty"`
	RuntimeS float64 `json:"runtime_s,omitempty"`
	WallMS   float64 `json:"wall_ms"`
	// PeakHeapMB is the maximum HeapAlloc observed during the run.
	PeakHeapMB float64 `json:"peak_heap_mb"`
	// TotalAllocMB is the cumulative bytes allocated by the run.
	TotalAllocMB float64 `json:"total_alloc_mb"`
	// NumGC counts garbage-collection cycles triggered by the run.
	NumGC uint32 `json:"num_gc"`
	// PauseTotalMS is the total stop-the-world pause time.
	PauseTotalMS float64 `json:"pause_total_ms"`
}

type memBenchReport struct {
	Seed       int64         `json:"seed"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Benchmarks []memBenchRow `json:"benchmarks"`
}

// runMemoryBench runs the dispatch-storm scale ladder — the 10k CI
// cell, the 100k-worker / 1M-task headline, and the 1M-worker /
// 10M-task cell — recording the memory trajectory of each, and
// writes BENCH_10.json.
func runMemoryBench(seed int64) error {
	rep := memBenchReport{Seed: seed, GoMaxProcs: runtime.GOMAXPROCS(0)}
	cells := []struct {
		name           string
		tasks, workers int
	}{
		{"ScaleDispatch", 10_000, 500},
		{"ScaleDispatch100k", 1_000_000, 100_000},
		{"ScaleDispatch1M", 10_000_000, 1_000_000},
	}
	for _, c := range cells {
		row, err := benchDispatchMemory(seed, c.name, c.tasks, c.workers)
		if err != nil {
			return err
		}
		rep.Benchmarks = append(rep.Benchmarks, row)
		fmt.Printf("  %s: %.0f ms wall, peak heap %.0f MB, %d GCs\n",
			row.Name, row.WallMS, row.PeakHeapMB, row.NumGC)
	}

	f, err := os.Create(memoryBenchFile)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	fmt.Printf("memory-benchmark results written to %s\n", memoryBenchFile)
	return nil
}

// benchDispatchMemory is runDispatchStorm with a heap probe riding
// the simulation: GC to a clean baseline, run the storm with a
// 10-simulated-second MemStats sampler, report wall clock and the
// heap trajectory deltas.
func benchDispatchMemory(seed int64, name string, tasks, workers int) (memBenchRow, error) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	peak := before.HeapAlloc

	start := time.Now()
	eng := simclock.NewEngine(experiments.SimStart)
	m := wq.NewMaster(eng, nil)
	for w := 0; w < workers; w++ {
		if err := m.AddWorker(fmt.Sprintf("w%d", w), resources.New(4, 16384, 100000)); err != nil {
			return memBenchRow{}, err
		}
	}
	rng := simclock.NewRNG(seed)
	for t := 0; t < tasks; t++ {
		d := time.Duration(rng.Jitter(float64(5*time.Minute), 0.8))
		m.Submit(wq.TaskSpec{
			Category:  "bench",
			Resources: resources.New(1, 1024, 100),
			Profile:   wq.Profile{ExecDuration: d, UsedCPUMilli: 900, UsedMemoryMB: 512},
		})
	}
	// The sampler re-arms itself only while the storm is live: Run
	// drains the event queue, so a perpetual ticker would never let it
	// terminate.
	var sample func()
	sample = func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
		if m.CompletedCount() < tasks {
			eng.After(10*time.Second, "mem-sample", sample)
		}
	}
	eng.After(10*time.Second, "mem-sample", sample)
	eng.Run()
	wallMS := float64(time.Since(start)) / float64(time.Millisecond)
	if m.CompletedCount() != tasks {
		return memBenchRow{}, fmt.Errorf("%s completed %d of %d", name, m.CompletedCount(), tasks)
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > peak {
		peak = after.HeapAlloc
	}
	const mb = 1 << 20
	return memBenchRow{
		Name:         name,
		Tasks:        tasks,
		Workers:      workers,
		Events:       eng.Processed(),
		RuntimeS:     eng.Elapsed().Seconds(),
		WallMS:       wallMS,
		PeakHeapMB:   float64(peak) / mb,
		TotalAllocMB: float64(after.TotalAlloc-before.TotalAlloc) / mb,
		NumGC:        after.NumGC - before.NumGC,
		PauseTotalMS: float64(after.PauseTotalNs-before.PauseTotalNs) / 1e6,
	}, nil
}
