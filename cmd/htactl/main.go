// Command htactl executes an HTC workload on the simulated Kubernetes
// cluster under a chosen autoscaler and reports the supply/demand
// outcome — a laptop-scale dry run of a workload's scaling behaviour
// before committing cloud money to it.
//
// The workload comes from a Makeflow file (-f) or a per-task trace
// CSV (-trace, schema: category,exec_s,cpu_milli,memory_mb,disk_mb,
// input_mb,output_mb,cores).
//
//	htactl -f workflow.mf                    # HTA (default)
//	htactl -f workflow.mf -autoscaler hpa -target 0.2
//	htactl -trace run.csv -autoscaler all    # compare all autoscalers
//	htactl -f workflow.mf -exec-time 2m      # synthetic task duration
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hta/internal/dag"
	"hta/internal/experiments"
	"hta/internal/flow"
	"hta/internal/hpa"
	"hta/internal/kubesim"
	"hta/internal/makeflow"
	"hta/internal/resources"
	"hta/internal/workload"
	"hta/internal/wq"
)

func main() {
	log.SetFlags(0)
	file := flag.String("f", "", "Makeflow workflow file")
	trace := flag.String("trace", "", "task trace CSV (alternative to -f)")
	scaler := flag.String("autoscaler", "hta", "autoscaler: hta, hpa, static or all")
	target := flag.Float64("target", 0.2, "HPA target CPU utilization")
	workers := flag.Int("workers", 10, "fleet size for -autoscaler static")
	maxNodes := flag.Int("max-nodes", 20, "cluster node quota")
	execTime := flag.Duration("exec-time", time.Minute, "simulated execution time per Makeflow task")
	cpuMilli := flag.Int64("task-cpu", 900, "simulated busy millicores per Makeflow task")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if (*file == "") == (*trace == "") {
		log.Fatal("htactl: provide exactly one of -f workflow.mf or -trace run.csv")
	}
	wl, desc, total, err := loadWorkload(*file, *trace, *execTime, *cpuMilli)
	if err != nil {
		log.Fatal(err)
	}
	kube := kubesim.Config{InitialNodes: 3, MinNodes: 1, MaxNodes: *maxNodes, Seed: *seed}

	names := []string{*scaler}
	if *scaler == "all" {
		names = []string{"hta", "hpa", "static"}
	}
	fmt.Printf("workload: %s (%d tasks)\n", desc, total)
	for _, name := range names {
		res, err := runOne(name, wl(), kube, *target, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== %s ===\n", name)
		fmt.Printf("simulated runtime:     %.0fs\n", res.Runtime.Seconds())
		fmt.Printf("tasks completed:       %d\n", res.Completed)
		fmt.Printf("peak workers:          %.0f\n", res.Workers.Max())
		fmt.Printf("mean CPU utilization:  %.1f%%\n", res.MeanCPUUtil*100)
		fmt.Printf("accumulated waste:     %.0f core-s\n", res.AccumulatedWaste())
		fmt.Printf("accumulated shortage:  %.0f core-s\n", res.AccumulatedShortage())
		if res.Requeues > 0 {
			fmt.Printf("interrupted dispatches: %d\n", res.Requeues)
		}
		fmt.Printf("worker pool over time:\n%s", res.Workers.ASCII(res.End, 10, 44))
	}
}

// loadWorkload returns a factory (each run needs a fresh graph), a
// description and the task count.
func loadWorkload(file, trace string, execTime time.Duration, cpuMilli int64) (func() experiments.Workload, string, int, error) {
	if trace != "" {
		f, err := os.Open(trace)
		if err != nil {
			return nil, "", 0, err
		}
		defer f.Close()
		specs, err := workload.ReadTrace(f)
		if err != nil {
			return nil, "", 0, err
		}
		factory := func() experiments.Workload {
			wl, err := experiments.Flat(specs)
			if err != nil {
				log.Fatal(err)
			}
			return wl
		}
		return factory, trace, len(specs), nil
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, "", 0, err
	}
	parsed, err := makeflow.ParseString(string(data))
	if err != nil {
		return nil, "", 0, err
	}
	total := parsed.Graph.Len()
	factory := func() experiments.Workload {
		// Re-parse for a fresh runtime state per run.
		p, err := makeflow.ParseString(string(data))
		if err != nil {
			log.Fatal(err)
		}
		specFor := func(n dag.Node) wq.TaskSpec {
			return wq.TaskSpec{
				Command:   n.Command,
				Category:  n.Category,
				Resources: n.Resources,
				Profile: wq.Profile{
					ExecDuration: execTime,
					UsedCPUMilli: cpuMilli,
					UsedMemoryMB: 512,
				},
			}
		}
		return experiments.Workload{Graph: p.Graph, Spec: flow.SpecFunc(specFor)}
	}
	return factory, file, total, nil
}

func runOne(name string, wl experiments.Workload, kube kubesim.Config, target float64, workers int) (*experiments.RunResult, error) {
	switch name {
	case "hta":
		return experiments.RunHTA("hta", wl, experiments.HTAOptions{Kube: kube})
	case "hpa":
		return experiments.RunHPA("hpa", wl, experiments.HPAOptions{
			Kube: kube,
			HPA: hpa.Config{
				TargetCPUUtilization: target,
				MaxReplicas:          kube.MaxNodes * 3,
			},
			PodResources: resources.New(1, 4096, 10000),
		})
	case "static":
		return experiments.RunStatic("static", wl, experiments.StaticOptions{
			Workers:         workers,
			WorkerResources: resources.New(3, 12288, 100000),
		})
	}
	return nil, fmt.Errorf("htactl: unknown autoscaler %q (want hta, hpa, static or all)", name)
}
