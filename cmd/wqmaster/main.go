// Command wqmaster runs a Work Queue master over TCP. Point it at a
// Makeflow file and start wqworker processes against its address; the
// master walks the workflow DAG, dispatches ready rules as shell
// commands and exits when the workflow completes.
//
//	wqmaster -addr 127.0.0.1:9123 -f workflow.mf
//	wqmaster -exec 'echo hello' -n 10
//
// With -txn-log the master journals every rule transition to an
// append-only transaction log and, when restarted on the same log,
// replays it to skip rules that already completed — the crash-recovery
// workflow of real Makeflow. Rules that were submitted but unfinished
// when the previous master died are resubmitted (at-least-once).
package main

import (
	"flag"
	"log"
	"os"
	"sync"
	"time"

	"hta/internal/dag"
	"hta/internal/flow"
	"hta/internal/makeflow"
	"hta/internal/resources"
	"hta/internal/wq"
	"hta/internal/wq/wire"
)

func main() {
	log.SetFlags(log.Ltime)
	addr := flag.String("addr", "127.0.0.1:9123", "listen address")
	file := flag.String("f", "", "Makeflow workflow file to execute")
	execCmd := flag.String("exec", "", "run this shell command as a bag of tasks instead of a workflow")
	n := flag.Int("n", 1, "number of copies of -exec to run")
	cores := flag.Float64("task-cores", 1, "declared cores per -exec task")
	txnLog := flag.String("txn-log", "",
		"journal rule transitions to this append-only file and resume from it on restart")
	flag.Parse()

	if *file == "" && *execCmd == "" {
		log.Fatal("wqmaster: provide -f workflow.mf or -exec 'command'")
	}

	m, err := wire.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	log.Printf("master listening on %s", m.Addr())

	g, specFor, err := buildWorkload(*file, *execCmd, *n, *cores)
	if err != nil {
		log.Fatal(err)
	}

	adapter := wire.NewFlowAdapter(m)
	var mu sync.Mutex
	completed := 0
	done := make(chan struct{})
	adapter.OnComplete(func(r wq.Result) {
		mu.Lock()
		completed++
		c := completed
		mu.Unlock()
		log.Printf("task %s finished on %s in %v (%d/%d)",
			r.Task.Tag, r.Task.WorkerID, r.Task.ExecWall, c, g.Len())
	})
	runner := flow.NewRunner(g, adapter, specFor)
	if *txnLog != "" {
		if err := resumeFromLog(runner, g, *txnLog); err != nil {
			log.Fatal(err)
		}
	}
	runner.OnAllDone(func() { close(done) })
	runner.Start()

	start := time.Now()
	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			if err := runner.Err(); err != nil {
				log.Fatal(err)
			}
			log.Printf("workflow complete: %d tasks in %v", g.Len(), time.Since(start).Round(time.Millisecond))
			return
		case <-ticker.C:
			s := m.Stats()
			log.Printf("status: waiting=%d running=%d done=%d workers=%d",
				s.Waiting, s.Running, s.Done, s.Workers)
		}
	}
}

// resumeFromLog replays an existing transaction log into the graph,
// then attaches the log file as the runner's journal. A restarted
// master holds no tasks, so rules that were submitted but never
// finished are left Pending and resubmitted by the frontier walk
// (at-least-once); only completions recorded in the log are skipped.
// A torn tail (the crash landed mid-record) is discarded by replay.
func resumeFromLog(runner *flow.Runner, g *dag.Graph, path string) error {
	if f, err := os.Open(path); err == nil {
		rep, rerr := makeflow.ReplayLog(f)
		f.Close()
		if rerr != nil {
			return rerr
		}
		resubmit := len(rep.InFlight)
		rep.InFlight = nil
		rr, err := flow.Recover(g, rep, nil, nil)
		if err != nil {
			return err
		}
		if rr.ReplayedRecords > 0 {
			log.Printf("resumed from %s: %d records, %d rules already done, %d resubmitted",
				path, rr.ReplayedRecords, rr.CompletedRules, resubmit)
		}
		if rep.Truncated {
			log.Printf("txn log %s had a torn tail; recovered to the last complete record", path)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	sink, err := makeflow.OpenFileSink(path)
	if err != nil {
		return err
	}
	runner.SetLog(sink)
	return nil
}

func buildWorkload(file, execCmd string, n int, cores float64) (*dag.Graph, flow.SpecFunc, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		parsed, err := makeflow.Parse(f)
		if err != nil {
			return nil, nil, err
		}
		return parsed.Graph, func(node dag.Node) wq.TaskSpec {
			return wq.TaskSpec{
				Command:   node.Command,
				Category:  node.Category,
				Resources: node.Resources,
			}
		}, nil
	}
	specs := make([]wq.TaskSpec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, wq.TaskSpec{
			Command:   execCmd,
			Category:  "exec",
			Resources: resources.Vector{MilliCPU: int64(cores * 1000)},
		})
	}
	g, fn, err := flow.FromSpecs(specs)
	if err != nil {
		return nil, nil, err
	}
	return g, fn, nil
}
