// Command wqworker runs a Work Queue worker over TCP: it connects to
// a wqmaster, advertises its resource capacity, executes the task
// commands it receives in a shell, and exits when drained or
// disconnected.
//
//	wqworker -master 127.0.0.1:9123 -id worker-1 -cores 4 -memory 8192
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hta/internal/resources"
	"hta/internal/wq/wire"
)

func main() {
	log.SetFlags(log.Ltime)
	master := flag.String("master", "127.0.0.1:9123", "master address")
	id := flag.String("id", "", "worker identity (default: worker-<pid>)")
	cores := flag.Float64("cores", 1, "advertised cores")
	memory := flag.Int64("memory", 1024, "advertised memory (MB)")
	disk := flag.Int64("disk", 10240, "advertised disk (MB)")
	shell := flag.String("shell", "/bin/sh", "shell for task commands")
	timeout := flag.Duration("task-timeout", 0, "per-task execution timeout (0 = none)")
	reconnect := flag.Duration("reconnect", 2*time.Minute,
		"keep retrying the master for this long after a connect failure or lost connection (0 = exit immediately)")
	flag.Parse()

	if *id == "" {
		*id = fmt.Sprintf("worker-%d", os.Getpid())
	}
	cfg := wire.WorkerConfig{
		ID:          *id,
		Capacity:    resources.New(*cores, *memory, *disk),
		Shell:       *shell,
		TaskTimeout: *timeout,
	}

	// Self-healing connection loop (wire.RunWorker): a master restart
	// or transient network partition must not kill the whole worker
	// fleet, so lost connections are retried with jittered exponential
	// backoff until the reconnect window (measured from the last
	// healthy moment) expires. The backoff resets only once the master
	// acks the registration handshake, and commands running when the
	// connection drops keep executing — the master rescues the
	// attempts when the worker reconnects. A clean drain exits — a
	// drained worker that reconnected would never be reaped by the
	// operator.
	start := time.Now()
	err := wire.RunWorker(*master, cfg, wire.RunOptions{
		ReconnectWindow: *reconnect,
		Backoff:         wire.NewBackoff(time.Second, 30*time.Second),
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatalf("worker %s exited after %v: %v", *id, time.Since(start).Round(time.Second), err)
	}
	log.Printf("worker %s drained cleanly after %v", *id, time.Since(start).Round(time.Second))
}
