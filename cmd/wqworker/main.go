// Command wqworker runs a Work Queue worker over TCP: it connects to
// a wqmaster, advertises its resource capacity, executes the task
// commands it receives in a shell, and exits when drained or
// disconnected.
//
//	wqworker -master 127.0.0.1:9123 -id worker-1 -cores 4 -memory 8192
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hta/internal/resources"
	"hta/internal/wq/wire"
)

func main() {
	log.SetFlags(log.Ltime)
	master := flag.String("master", "127.0.0.1:9123", "master address")
	id := flag.String("id", "", "worker identity (default: worker-<pid>)")
	cores := flag.Float64("cores", 1, "advertised cores")
	memory := flag.Int64("memory", 1024, "advertised memory (MB)")
	disk := flag.Int64("disk", 10240, "advertised disk (MB)")
	shell := flag.String("shell", "/bin/sh", "shell for task commands")
	timeout := flag.Duration("task-timeout", 0, "per-task execution timeout (0 = none)")
	flag.Parse()

	if *id == "" {
		*id = fmt.Sprintf("worker-%d", os.Getpid())
	}
	w, err := wire.Connect(*master, wire.WorkerConfig{
		ID:          *id,
		Capacity:    resources.New(*cores, *memory, *disk),
		Shell:       *shell,
		TaskTimeout: *timeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("worker %s connected to %s (%.1f cores, %d MB)", *id, *master, *cores, *memory)
	start := time.Now()
	if err := w.Wait(); err != nil {
		log.Fatalf("worker exited after %v: %v", time.Since(start).Round(time.Second), err)
	}
	log.Printf("worker drained cleanly after %v", time.Since(start).Round(time.Second))
}
