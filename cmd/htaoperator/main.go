// Command htaoperator runs the HTA feedback loop against a real
// Kubernetes API server: it hosts the TCP Work Queue master, watches
// its worker pods, measures cold-start initialization times, and
// creates/drains worker pods per Algorithm 1. Worker pods are
// expected to run `wqworker -master $WQ_MASTER -id $WQ_WORKER_ID`.
//
//	htaoperator -kube-api https://host:6443 -token $TOKEN \
//	    -image registry/wq-worker:latest -listen 0.0.0.0:9123 \
//	    -f workflow.mf
//
// With -f the operator executes the workflow and exits when it
// completes; without it, the operator serves until interrupted and
// tasks can be submitted by other processes sharing the master.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"hta/internal/dag"
	"hta/internal/flow"
	"hta/internal/kubeclient"
	"hta/internal/makeflow"
	"hta/internal/operator"
	"hta/internal/resources"
	"hta/internal/wq"
	"hta/internal/wq/wire"
)

func main() {
	log.SetFlags(log.Ltime)
	kubeAPI := flag.String("kube-api", "", "Kubernetes API server URL (required)")
	namespace := flag.String("namespace", "default", "namespace for worker pods")
	token := flag.String("token", "", "bearer token for the API server")
	listen := flag.String("listen", "0.0.0.0:9123", "Work Queue master listen address")
	advertise := flag.String("advertise", "", "master address advertised to worker pods (default: listen address)")
	image := flag.String("image", "", "worker container image (required)")
	cores := flag.Float64("worker-cores", 3, "per-worker cores")
	memory := flag.Int64("worker-memory", 12288, "per-worker memory (MB)")
	minWorkers := flag.Int("min-workers", 0, "worker-pod floor")
	maxWorkers := flag.Int("max-workers", 20, "worker-pod quota")
	initial := flag.Int("initial-workers", 3, "warm-up fleet size")
	cycle := flag.Duration("cycle", 30*time.Second, "planning interval")
	file := flag.String("f", "", "Makeflow workflow to execute (optional)")
	state := flag.String("state", "",
		"persist learned state (category estimates, init time) to this file and resume from it on restart")
	flag.Parse()

	if *kubeAPI == "" || *image == "" {
		flag.Usage()
		os.Exit(2)
	}
	client, err := kubeclient.New(kubeclient.Config{
		BaseURL:     *kubeAPI,
		Namespace:   *namespace,
		BearerToken: *token,
	})
	if err != nil {
		log.Fatal(err)
	}
	master, err := wire.ListenConfig(*listen, wire.MasterConfig{HeartbeatTimeout: time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	defer master.Close()
	log.Printf("master listening on %s", master.Addr())

	op, err := operator.New(operator.Config{
		Client:           client,
		Master:           master,
		MasterAddr:       *advertise,
		WorkerImage:      *image,
		WorkerResources:  resources.New(*cores, *memory, 100000),
		InitialWorkers:   *initial,
		MinWorkers:       *minWorkers,
		MaxWorkers:       *maxWorkers,
		Cycle:            *cycle,
		InitTimeFallback: 160 * time.Second,
		StatePath:        *state,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var done atomic.Bool
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		parsed, err := makeflow.Parse(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		adapter := wire.NewFlowAdapter(master)
		runner := flow.NewRunner(parsed.Graph, adapter, func(n dag.Node) wq.TaskSpec {
			return wq.TaskSpec{Command: n.Command, Category: n.Category, Resources: n.Resources}
		})
		runner.OnAllDone(func() {
			log.Printf("workflow complete (%d tasks)", parsed.Graph.Len())
			done.Store(true)
			cancel()
		})
		runner.Start()
		log.Printf("executing %s (%d tasks)", *file, parsed.Graph.Len())
	}

	err = op.Run(ctx)
	if done.Load() || ctx.Err() != nil {
		s := master.Stats()
		log.Printf("shutting down: done=%d workers=%d", s.Done, s.Workers)
		return
	}
	log.Fatal(err)
}
