package hta_test

import (
	"fmt"
	"strings"
	"time"

	"hta"
)

// The façade runs an entire HTC workload — cluster, scheduler and
// autoscaler — in virtual time.
func ExampleSystem_RunTasks() {
	sys, err := hta.NewSystem(hta.SystemConfig{
		Cluster: hta.ClusterConfig{InitialNodes: 3, MaxNodes: 10, Seed: 1},
	})
	if err != nil {
		panic(err)
	}
	defer sys.Cluster().Stop()

	res, err := sys.RunTasks(hta.UniformTasks(30, time.Minute))
	if err != nil {
		panic(err)
	}
	fmt.Println("completed:", res.Completed)
	fmt.Println("all done:", res.Runtime > 0)
	// Output:
	// completed: 30
	// all done: true
}

// Makeflow files execute directly against the simulated stack.
func ExampleSystem_RunMakeflow() {
	sys, err := hta.NewSystem(hta.SystemConfig{
		Cluster: hta.ClusterConfig{InitialNodes: 3, MaxNodes: 5, Seed: 1},
	})
	if err != nil {
		panic(err)
	}
	defer sys.Cluster().Stop()

	wf := `
split.0 split.1: input
	split input 2
out.0: split.0
	work split.0
out.1: split.1
	work split.1
`
	res, err := sys.RunMakeflow(strings.NewReader(wf), nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("tasks:", res.Completed)
	// Output: tasks: 3
}
