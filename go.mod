module hta

go 1.22
