// Operator: the deployable HTA stack on a laptop. An in-process fake
// Kubernetes API server (internal/kubeclient/kubetest) stands in for
// the cluster, a goroutine plays the kubelet — turning created worker
// pods into real TCP Work Queue workers that execute real shell
// commands — and the real operator (internal/operator, the same code
// cmd/htaoperator deploys) watches pods, measures cold starts and
// scales the fleet per Algorithm 1.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hta/internal/kubeclient"
	"hta/internal/kubeclient/kubetest"
	"hta/internal/operator"
	"hta/internal/resources"
	"hta/internal/wq/wire"
)

func main() {
	log.SetFlags(log.Ltime)

	// The "cluster": a fake API server.
	apiServer := kubetest.NewServer()
	defer apiServer.Close()
	client, err := kubeclient.New(kubeclient.Config{BaseURL: apiServer.URL()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fake API server at %s\n", apiServer.URL())

	// The Work Queue master the operator hosts.
	master, err := wire.ListenConfig("127.0.0.1:0", wire.MasterConfig{HeartbeatTimeout: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer master.Close()
	fmt.Printf("work queue master at %s\n", master.Addr())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The "kubelet": watches worker pods, marks them Running after a
	// simulated 300 ms cold start, and connects a real TCP worker for
	// each — exactly what the container entrypoint does in a real
	// deployment.
	events, err := client.WatchPods(ctx, map[string]string{"app": "wq-worker"})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for ev := range events {
			if ev.Type != kubeclient.WatchAdded {
				continue
			}
			pod := ev.Pod
			go func() {
				time.Sleep(300 * time.Millisecond) // provisioning + image pull
				if apiServer.SetPodPhase("default", pod.Metadata.Name, kubeclient.PodRunning) != nil {
					return
				}
				req := pod.Spec.Containers[0].Resources.Requests
				cpu, _ := kubeclient.ParseCPUQuantity(req["cpu"])
				mem, _ := kubeclient.ParseMemoryQuantity(req["memory"])
				w, err := wire.Connect(master.Addr(), wire.WorkerConfig{
					ID:       pod.Metadata.Name,
					Capacity: resources.Vector{MilliCPU: cpu, MemoryMB: mem, DiskMB: 10000},
				})
				if err == nil {
					fmt.Printf("  kubelet: pod %s running, worker connected\n", pod.Metadata.Name)
					w.Wait()
				}
			}()
		}
	}()

	// The operator.
	op, err := operator.New(operator.Config{
		Client:           client,
		Master:           master,
		WorkerImage:      "wq-worker:latest",
		WorkerResources:  resources.New(2, 2048, 10000),
		InitialWorkers:   1,
		MaxWorkers:       5,
		Cycle:            250 * time.Millisecond,
		InitTimeFallback: 500 * time.Millisecond,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	go op.Run(ctx)

	// Submit a burst of real shell tasks.
	const n = 12
	done := make(chan struct{})
	completed := 0
	master.OnComplete(func(r wire.Result) {
		fmt.Printf("  task %d on %s: %q (%.0f%% CPU)\n",
			r.Task.ID, r.Task.WorkerID, firstLine(r.Task.Output), float64(r.Task.MeasuredCPUMilli)/10)
		completed++
		if completed == n {
			close(done)
		}
	})
	for i := 0; i < n; i++ {
		master.Submit(fmt.Sprintf("sleep 0.5 && echo result-%d", i), "demo", resources.New(1, 256, 1))
	}
	fmt.Printf("submitted %d tasks; operator scaling...\n", n)
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		log.Fatalf("timed out; stats: %+v", master.Stats())
	}
	initTime, measured := op.InitTime()
	fmt.Printf("all %d tasks complete; measured cold start %v (measured=%v)\n",
		n, initTime.Round(time.Millisecond), measured)

	// Watch the drain: the operator releases the idle fleet.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if apiServer.PodCount() == 0 {
			fmt.Println("fleet drained: all worker pods deleted")
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("pods remaining at exit: %d\n", apiServer.PodCount())
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
