// IObound: the paper's Fig. 11 scenario. 200 dd-style tasks keep a
// processor busy with disk I/O while consuming only ~15% CPU. A
// CPU-threshold autoscaler (HPA at a 20% target) sees "low load" and
// never scales the cluster; HTA sees 200 queued tasks that each
// occupy a processor and scales to the quota, finishing severalfold
// faster.
package main

import (
	"fmt"
	"log"

	"hta/internal/experiments"
	"hta/internal/hpa"
	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/workload"
)

func main() {
	kube := kubesim.Config{InitialNodes: 3, MinNodes: 1, MaxNodes: 20, Seed: 1}

	p := workload.DefaultIOBound()
	p.Declared = true
	wlHPA, err := experiments.Flat(p.Specs())
	if err != nil {
		log.Fatal(err)
	}
	hpaRes, err := experiments.RunHPA("HPA-20%", wlHPA, experiments.HPAOptions{
		Kube:         kube,
		PodResources: resources.New(1, 1024, 10000),
		HPA: hpa.Config{
			TargetCPUUtilization: 0.20,
			MinReplicas:          3,
			MaxReplicas:          60,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	p2 := workload.DefaultIOBound() // requirements unknown: HTA measures
	wlHTA, err := experiments.Flat(p2.Specs())
	if err != nil {
		log.Fatal(err)
	}
	htaRes, err := experiments.RunHTA("HTA", wlHTA, experiments.HTAOptions{Kube: kube})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("200 I/O-bound dd tasks (≈15% CPU each) on a 20-node cluster")
	fmt.Printf("%-10s %10s %14s %18s\n", "Autoscaler", "Runtime", "PeakWorkers", "Accum. Shortage")
	for _, r := range []*experiments.RunResult{hpaRes, htaRes} {
		fmt.Printf("%-10s %9.0fs %14.0f %13.0f core-s\n",
			r.Name, r.Runtime.Seconds(), r.Workers.Max(), r.AccumulatedShortage())
	}
	fmt.Printf("\nWhy: HPA watches CPU utilization (%.0f%% < 20%% target ⇒ never scales);\n",
		hpaRes.MeanCPUUtil*100)
	fmt.Println("HTA watches the queue and the processors tasks actually occupy.")
	fmt.Printf("\nHTA worker supply (cores):\n%s", htaRes.Account.Supply.ASCII(htaRes.End, 10, 44))
	fmt.Printf("\nSpeedup: %.1f×\n", hpaRes.Runtime.Seconds()/htaRes.Runtime.Seconds())
}
