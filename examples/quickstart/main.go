// Quickstart: run a bag of 100 one-minute tasks on a simulated
// Kubernetes cluster under the High-Throughput Autoscaler and print
// what the autoscaler did. Everything runs in virtual time, so this
// finishes in milliseconds of wall clock.
package main

import (
	"fmt"
	"log"
	"time"

	"hta"
)

func main() {
	sys, err := hta.NewSystem(hta.SystemConfig{
		Cluster: hta.ClusterConfig{
			InitialNodes: 3,
			MaxNodes:     10,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Cluster().Stop()

	// 100 tasks of ~1 minute each with *unknown* resource
	// requirements: HTA probes the first one, learns the category's
	// consumption, and packs the rest.
	res, err := sys.RunTasks(hta.UniformTasks(100, time.Minute))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload runtime:      %.0fs (virtual)\n", res.Runtime.Seconds())
	fmt.Printf("tasks completed:       %d\n", res.Completed)
	fmt.Printf("peak workers:          %d\n", res.PeakWorkers)
	fmt.Printf("accumulated waste:     %.0f core-s\n", res.AccumulatedWasteCoreSeconds)
	fmt.Printf("accumulated shortage:  %.0f core-s\n", res.AccumulatedShortageCoreSeconds)
	if len(res.InitTimeSamples) > 0 {
		fmt.Printf("measured node init:    %.0fs (latest)\n",
			res.InitTimeSamples[len(res.InitTimeSamples)-1].Seconds())
	}
	end := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC).Add(res.Runtime)
	fmt.Printf("\nworker-pool supply over time (cores):\n%s", res.Supply.ASCII(end, 12, 44))
}
