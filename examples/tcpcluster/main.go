// Tcpcluster: the non-simulated path. A real Work Queue master
// listens on loopback TCP, three worker processes (in-process here,
// but identical to `cmd/wqworker`) connect with different capacities,
// and a small workflow of actual shell commands runs across them —
// the same master/worker protocol the paper's stack deploys inside
// worker pods.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"hta/internal/dag"
	"hta/internal/flow"
	"hta/internal/makeflow"
	"hta/internal/resources"
	"hta/internal/wq"
	"hta/internal/wq/wire"
)

const workflow = `
CATEGORY=gen
CORES=1
nums.txt:
	seq 1 100 > nums.txt

CATEGORY=sum
CORES=1
even.txt: nums.txt
	awk 'NR % 2 == 0' nums.txt > even.txt
odd.txt: nums.txt
	awk 'NR % 2 == 1' nums.txt > odd.txt

CATEGORY=reduce
CORES=1
total.txt: even.txt odd.txt
	cat even.txt odd.txt | awk '{s+=$1} END {print s}' > total.txt
`

func main() {
	master, err := wire.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer master.Close()
	fmt.Printf("master listening on %s\n", master.Addr())

	var workers []*wire.Worker
	for i, cores := range []float64{1, 2, 1} {
		w, err := wire.Connect(master.Addr(), wire.WorkerConfig{
			ID:       fmt.Sprintf("worker-%d", i+1),
			Capacity: resources.New(cores, 2048, 10240),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		workers = append(workers, w)
	}
	fmt.Printf("%d workers connected\n", len(workers))

	parsed, err := makeflow.ParseString(workflow)
	if err != nil {
		log.Fatal(err)
	}
	adapter := wire.NewFlowAdapter(master)
	var mu sync.Mutex
	adapter.OnComplete(func(r wq.Result) {
		mu.Lock()
		fmt.Printf("  %-16s on %-9s exit in %v\n", r.Task.Tag, r.Task.WorkerID, r.Task.ExecWall)
		mu.Unlock()
	})
	runner := flow.NewRunner(parsed.Graph, adapter, func(n dag.Node) wq.TaskSpec {
		return wq.TaskSpec{Command: n.Command, Category: n.Category, Resources: n.Resources}
	})
	done := make(chan struct{})
	runner.OnAllDone(func() { close(done) })

	start := time.Now()
	runner.Start()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		log.Fatalf("workflow timed out; stats: %+v", master.Stats())
	}
	if err := runner.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow of %d tasks complete in %v (check total.txt: sum of 1..100 = 5050)\n",
		parsed.Graph.Len(), time.Since(start).Round(time.Millisecond))
}
