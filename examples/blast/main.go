// Blast: the paper's motivating bioinformatics scenario (Fig. 10). A
// three-stage BLAST workflow — 200 split/align tasks, a 34-task
// middle stage, 164 final-stage tasks — runs twice on the same
// simulated 20-node cluster: once under the Kubernetes Horizontal Pod
// Autoscaler at a 20% CPU target, once under HTA. The comparison
// shows HTA following the workflow's stage structure (scaling down
// through the narrow middle stage) where HPA stays pinned at the
// peak.
package main

import (
	"fmt"
	"log"

	"hta/internal/experiments"
	"hta/internal/hpa"
	"hta/internal/kubesim"
	"hta/internal/resources"
	"hta/internal/workload"
)

func main() {
	kube := kubesim.Config{InitialNodes: 3, MinNodes: 1, MaxNodes: 20, Seed: 1}

	// HPA baseline: one-core worker pods, tasks with declared
	// requirements.
	p := workload.DefaultMultistage()
	p.Declared = true
	g, spec, err := p.Build()
	if err != nil {
		log.Fatal(err)
	}
	hpaRes, err := experiments.RunHPA("HPA-20%", experiments.Workload{Graph: g, Spec: spec},
		experiments.HPAOptions{
			Kube:         kube,
			PodResources: resources.New(1, 4096, 20000),
			HPA: hpa.Config{
				TargetCPUUtilization: 0.20,
				MaxReplicas:          60,
			},
		})
	if err != nil {
		log.Fatal(err)
	}

	// HTA: requirements unknown; the warm-up stage measures each
	// category from its first completed task.
	p2 := workload.DefaultMultistage()
	g2, spec2, err := p2.Build()
	if err != nil {
		log.Fatal(err)
	}
	htaRes, err := experiments.RunHTA("HTA", experiments.Workload{Graph: g2, Spec: spec2},
		experiments.HTAOptions{Kube: kube})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Three-stage BLAST workflow (200 / 34 / 164 tasks) on a 20-node cluster")
	fmt.Printf("%-10s %10s %16s %18s\n", "Autoscaler", "Runtime", "Accum. Waste", "Accum. Shortage")
	for _, r := range []*experiments.RunResult{hpaRes, htaRes} {
		fmt.Printf("%-10s %9.0fs %11.0f core-s %13.0f core-s\n",
			r.Name, r.Runtime.Seconds(), r.AccumulatedWaste(), r.AccumulatedShortage())
	}
	fmt.Printf("\nHPA-20%% supply (cores) — pinned at the peak through the narrow stage:\n%s",
		hpaRes.Account.Supply.ASCII(hpaRes.End, 12, 44))
	fmt.Printf("\nHTA supply (cores) — follows the stage structure:\n%s",
		htaRes.Account.Supply.ASCII(htaRes.End, 12, 44))
	fmt.Printf("\nTrade-off: HTA ran %.0f%% longer but wasted %.1f× less resource.\n",
		100*(htaRes.Runtime.Seconds()/hpaRes.Runtime.Seconds()-1),
		hpaRes.AccumulatedWaste()/htaRes.AccumulatedWaste())
}
